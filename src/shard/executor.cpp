#include "shard/executor.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>
#include <unordered_map>

#include "backend/vgpu_backend.hpp"
#include "common/error.hpp"
#include "perfmodel/timemodel.hpp"
#include "shard/merge.hpp"
#include "vgpu/fault.hpp"

namespace tbs::shard {

namespace {

double wall_seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Dual-backend default kernels for the diagonal tiles — the paper's
/// winners, present on both substrates.
const kernels::KernelVariant* default_variant(kernels::ProblemType type) {
  const auto& reg = kernels::KernelRegistry::instance();
  return type == kernels::ProblemType::Sdh
             ? reg.find(kernels::ProblemType::Sdh, "Reg-ROC-Out")
             : reg.find(kernels::ProblemType::Pcf, "Register-ROC");
}

/// The partial one executed tile produced.
struct TileResult {
  bool done = false;
  bool failover = false;
  std::size_t lane = 0;
  double seconds = 0.0;
  double stage_seconds = 0.0;   ///< staging wall of the kept attempt
  std::size_t staged_bytes = 0; ///< bytes the kept attempt moved
  Histogram hist;
  std::uint64_t pairs = 0;
  vgpu::KernelStats stats;
};

/// Per-lane execution state, owned by that lane's thread until join.
struct LaneRun {
  std::vector<std::size_t> queue;  ///< tile ids, placement order
  bool dead = false;
  std::vector<std::size_t> unfinished;  ///< ids lost with the lane
  double seconds = 0.0;                 ///< summed executed-tile seconds
  std::size_t staged_bytes = 0;
  double waste_seconds = 0.0;       ///< wall of failed attempts
  std::uint64_t waste_events = 0;
  std::exception_ptr error;  ///< non-DeviceError failures, rethrown
};

/// Charge a tile: modeled device seconds on a vgpu lane (the simulator's
/// clock), wall seconds on a CPU lane (the host's clock) — the same split
/// the planner already compares across the seam.
double tile_seconds(const Lane& lane, const vgpu::KernelStats& stats,
                    double wall) {
  if (auto* vb = dynamic_cast<backend::VgpuBackend*>(lane.be))
    return perfmodel::model_time(vb->device().spec(), stats).seconds;
  return wall;
}

}  // namespace

Report Executor::run(std::span<const Lane> lanes, const PointsSoA& pts,
                     const kernels::ProblemDesc& desc, const Options& opt,
                     const FailoverHook& on_failover) {
  check(!lanes.empty(), "shard::Executor: need at least one lane");
  check(opt.shards >= 1, "shard::Executor: need at least one shard");
  for (const Lane& lane : lanes)
    check(lane.be != nullptr, "shard::Executor: null lane backend");

  const kernels::KernelVariant* variant =
      opt.variant != nullptr ? opt.variant : default_variant(desc.type);
  check(variant != nullptr, "shard::Executor: no kernel variant");
  for (const Lane& lane : lanes)
    check(lane.be->can_launch(*variant, desc, opt.block_size),
          "shard::Executor: variant not launchable on every lane");

  Report report;
  report.variant_name = variant->name;
  report.shards = opt.shards;
  report.replicated_bytes = lanes.size() * 3 * pts.size() * sizeof(float);

  const Partition part = make_partition(pts, opt.shards, opt.strategy);
  const std::vector<Tile> tiles = enumerate_tiles(part);
  const Placement placement = place_tiles(part, lanes.size());
  report.tiles_total = tiles.size();

  // Tile -> global id, so lane queues and failover share one result slot.
  std::unordered_map<std::uint64_t, std::size_t> tile_id;
  tile_id.reserve(tiles.size());
  for (std::size_t i = 0; i < tiles.size(); ++i)
    tile_id[(static_cast<std::uint64_t>(tiles[i].a) << 32) | tiles[i].b] = i;

  std::vector<TileResult> results(tiles.size());
  std::vector<LaneRun> runs(lanes.size());
  for (std::size_t l = 0; l < lanes.size(); ++l)
    for (const Tile& t : placement.lanes[l])
      runs[l].queue.push_back(
          tile_id.at((static_cast<std::uint64_t>(t.a) << 32) | t.b));
  for (const LaneRun& r : runs)
    if (!r.queue.empty()) ++report.lanes_used;

  // Stage a tile's operand shards on a lane, deduped through the router;
  // returns the bytes this tile actually moved. Caller holds the lane
  // mutex (staging is a substrate operation too).
  const auto stage_operands = [&](std::size_t l, const Tile& t) {
    std::size_t bytes = 0;
    for (const std::size_t s :
         t.diagonal() ? std::vector<std::size_t>{t.a}
                      : std::vector<std::size_t>{t.a, t.b}) {
      const Shard& sh = part.shards[s];
      if (router_ == nullptr || router_->needs_staging(l, sh.fingerprint))
        bytes += lanes[l].be->stage(sh.pts);
    }
    return bytes;
  };

  // Execute one tile on a lane (mutex held by the caller); fills its
  // result slot and returns the charged seconds.
  const auto execute_tile = [&](std::size_t l, std::size_t id,
                                bool failover) {
    const Tile& t = tiles[id];
    TileResult& tr = results[id];
    kernels::KernelOutput out;
    out.hist = &tr.hist;
    out.pairs = &tr.pairs;
    const auto t0 = std::chrono::steady_clock::now();
    if (t.diagonal()) {
      tr.stats = lanes[l].be->launch(*variant, part.shards[t.a].pts, desc,
                                     opt.block_size, out);
    } else {
      tr.stats = lanes[l].be->launch_cross(part.shards[t.a].pts,
                                           part.shards[t.b].pts, desc,
                                           opt.block_size, out);
    }
    tr.seconds = tile_seconds(lanes[l], tr.stats, wall_seconds(t0));
    tr.lane = l;
    tr.failover = failover;
    tr.done = true;
    return tr.seconds;
  };

  // Stage + execute under the lane mutex, riding out transient faults
  // (ECC / launch timeout) with in-place retries; only a persistent error
  // (device lost, or a transient one that keeps recurring) escapes and
  // costs the lane. Every failed attempt's wall time is charged to the
  // lane's waste, never to the tile — only the kept attempt's staging and
  // kernel seconds land in the tile's result slot.
  constexpr int kTransientRetries = 2;
  const auto locked_execute = [&](std::size_t l, std::size_t id,
                                  bool failover, LaneRun& run) {
    for (int attempt = 0;; ++attempt) {
      const auto a0 = std::chrono::steady_clock::now();
      try {
        std::unique_lock<std::mutex> lock;
        if (lanes[l].mu != nullptr)
          lock = std::unique_lock<std::mutex>(*lanes[l].mu);
        const auto s0 = std::chrono::steady_clock::now();
        const std::size_t tile_bytes = stage_operands(l, tiles[id]);
        const double stage_sec = wall_seconds(s0);
        const double sec = execute_tile(l, id, failover);
        TileResult& tr = results[id];
        tr.stage_seconds = stage_sec;
        tr.staged_bytes = tile_bytes;
        run.staged_bytes += tile_bytes;
        return sec;
      } catch (const vgpu::DeviceError& e) {
        run.waste_seconds += wall_seconds(a0);
        ++run.waste_events;
        if (!e.transient() || attempt >= kTransientRetries) throw;
      }
    }
  };

  // Phase 1: one thread per lane with work, affinity-placed tiles.
  std::vector<std::thread> threads;
  threads.reserve(lanes.size());
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    if (runs[l].queue.empty()) continue;
    threads.emplace_back([&, l] {
      // Lane threads are born context-free; adopt the owning query's trace
      // so anything recorded here (backend launch observers) links up.
      const obs::ScopedTraceContext trace_scope(opt.trace);
      LaneRun& run = runs[l];
      for (std::size_t qi = 0; qi < run.queue.size(); ++qi) {
        const std::size_t id = run.queue[qi];
        try {
          run.seconds += locked_execute(l, id, /*failover=*/false, run);
        } catch (const vgpu::DeviceError&) {
          // Lane is gone: everything not yet finished (this tile included)
          // must run elsewhere. Completed partials stay valid.
          run.dead = true;
          run.unfinished.assign(run.queue.begin() +
                                    static_cast<std::ptrdiff_t>(qi),
                                run.queue.end());
          return;
        } catch (...) {
          run.error = std::current_exception();
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (const LaneRun& run : runs)
    if (run.error) std::rethrow_exception(run.error);

  // Phase 2: failover. Collect the dead lanes' unfinished tiles and
  // re-execute *only those* on surviving lanes, least-loaded first.
  std::vector<bool> alive(lanes.size());
  for (std::size_t l = 0; l < lanes.size(); ++l) alive[l] = !runs[l].dead;
  std::vector<std::size_t> pending;
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    if (!runs[l].dead) continue;
    ++report.lanes_lost;
    if (router_ != nullptr) router_->evict_lane(l);
    pending.insert(pending.end(), runs[l].unfinished.begin(),
                   runs[l].unfinished.end());
    if (on_failover) on_failover(l, runs[l].unfinished.size());
  }

  while (!pending.empty()) {
    std::size_t best = lanes.size();
    for (std::size_t l = 0; l < lanes.size(); ++l)
      if (alive[l] && (best == lanes.size() ||
                       runs[l].seconds < runs[best].seconds))
        best = l;
    if (best == lanes.size())
      throw vgpu::DeviceError("shard::Executor: all lanes lost",
                              /*transient=*/false);

    const std::size_t id = pending.back();
    try {
      runs[best].seconds +=
          locked_execute(best, id, /*failover=*/true, runs[best]);
      pending.pop_back();
      ++report.tiles_failed_over;
    } catch (const vgpu::DeviceError&) {
      // The survivor died too; mark it and reroute the whole remainder
      // (the popped tile is still pending).
      alive[best] = false;
      ++report.lanes_lost;
      if (router_ != nullptr) router_->evict_lane(best);
      if (on_failover) on_failover(best, pending.size());
    }
  }

  // Phase 3: reduction-tree merge of the tile partials.
  const auto m0 = std::chrono::steady_clock::now();
  std::vector<vgpu::KernelStats> stat_parts;
  stat_parts.reserve(tiles.size());
  if (desc.type == kernels::ProblemType::Sdh) {
    std::vector<Histogram> parts;
    parts.reserve(tiles.size());
    for (TileResult& tr : results) {
      parts.push_back(std::move(tr.hist));
      stat_parts.push_back(tr.stats);
    }
    if (parts.empty())  // n < 2: no tiles, but the answer has a shape
      parts.emplace_back(desc.bucket_width,
                         static_cast<std::size_t>(desc.buckets));
    report.hist = merge_histograms(std::move(parts));
  } else {
    std::vector<std::uint64_t> parts;
    parts.reserve(tiles.size());
    for (const TileResult& tr : results) {
      parts.push_back(tr.pairs);
      stat_parts.push_back(tr.stats);
    }
    report.pairs = merge_pairs(parts);
  }
  report.stats = merge_stats(stat_parts);
  report.merge_seconds = wall_seconds(m0);

  for (const LaneRun& run : runs) {
    report.kernel_seconds = std::max(report.kernel_seconds, run.seconds);
    report.staged_bytes += run.staged_bytes;
    report.waste_seconds += run.waste_seconds;
    report.waste_events += run.waste_events;
  }
  report.spans.reserve(tiles.size());
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    const TileResult& tr = results[i];
    TileSpan span;
    span.tile = tiles[i];
    span.lane = tr.lane;
    span.lane_name = !lanes[tr.lane].name.empty()
                         ? lanes[tr.lane].name
                         : lanes[tr.lane].be->caps().name;
    span.seconds = tr.seconds;
    span.stage_seconds = tr.stage_seconds;
    span.staged_bytes = tr.staged_bytes;
    span.device_cycles = tr.stats.total_warp_cycles;
    span.failover = tr.failover;
    report.stage_seconds += tr.stage_seconds;
    report.spans.push_back(std::move(span));
  }
  return report;
}

}  // namespace tbs::shard
