// Executor — runs one 2-BS query as a sharded, data-parallel job over a
// pool of heterogeneous execution lanes, with failover.
//
// Pipeline for one run():
//   1. Partition the dataset into K shards (partition.hpp).
//   2. Enumerate the K diagonal + K(K-1)/2 cross tiles and place them on
//      lanes with shard affinity (tiles.hpp).
//   3. Stage each lane's operand shards (deduped through the Router so a
//      warm lane moves zero bytes), then execute its tiles — diagonal
//      tiles through IBackend::launch() with the chosen registry variant,
//      cross tiles through IBackend::launch_cross() — one thread per lane.
//   4. If a lane throws vgpu::DeviceError, the lane is dead: its staged
//      set is evicted and only its *incomplete* tiles are re-executed on
//      surviving lanes (completed partials are kept — integer partials
//      need no undo). The failover hook fires once per lost lane.
//   5. Merge tile partials with the pairwise reduction tree (merge.hpp).
//
// Timing: each tile is charged its modeled kernel seconds on a vgpu lane
// (perfmodel::model_time over the measured counters) or its wall seconds
// on a CPU lane; the report's kernel_seconds is the *maximum* over lanes
// of their summed tile seconds — the makespan of the parallel schedule,
// directly comparable to a single-device run's kernel seconds.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "common/histogram.hpp"
#include "common/points.hpp"
#include "obs/trace.hpp"
#include "shard/partition.hpp"
#include "shard/router.hpp"
#include "shard/tiles.hpp"

namespace tbs::shard {

/// One execution lane: a backend plus the mutex serializing launches on
/// its substrate (serve lends its per-worker slot mutexes so sharded and
/// regular queries interleave safely; standalone callers may pass null
/// when nothing else launches on the backend).
struct Lane {
  backend::IBackend* be = nullptr;
  std::mutex* mu = nullptr;
  std::string name;  ///< audit label; defaults to be->caps().name
};

/// Knobs for one sharded run.
struct Options {
  std::size_t shards = 1;
  Strategy strategy = Strategy::Contiguous;
  /// Kernel for the diagonal tiles; null picks the problem's dual-backend
  /// default (Reg-ROC-Out for SDH, Register-ROC for PCF). Must be
  /// launchable on every lane. Cross tiles always use the substrate's
  /// fixed cross kernel (backend::IBackend::launch_cross).
  const kernels::KernelVariant* variant = nullptr;
  int block_size = 256;
  /// Trace context of the owning query, installed on every lane thread so
  /// backend launch-observer spans recorded there join the query's trace.
  /// Invalid (default) = lane threads run trace-context-free.
  obs::TraceContext trace{};
  /// Straggler hedging: when > 0, a watchdog re-executes any tile whose
  /// lane has been busy on it longer than this many wall seconds onto an
  /// idle spare lane. First valid result wins; the loser's wall time is
  /// charged to waste. 0 disables hedging.
  double hedge_after_seconds = 0.0;
};

/// Audit record of one executed tile — the row a cost ledger attributes
/// sharded launch time to.
struct TileSpan {
  Tile tile;
  std::size_t lane = 0;    ///< lane that produced the kept partial
  std::string lane_name;   ///< that lane's audit label / backend name
  double seconds = 0.0;    ///< modeled (vgpu) or wall (cpu) kernel time
  double stage_seconds = 0.0;   ///< staging wall of the kept attempt
  std::size_t staged_bytes = 0; ///< bytes the kept attempt moved
  double device_cycles = 0.0;   ///< simulated warp cycles (0 on cpu)
  bool failover = false;   ///< re-executed after its original lane died
  bool hedged = false;     ///< kept partial came from a hedge attempt
};

/// Everything a sharded run produced.
struct Report {
  Histogram hist;              ///< SDH answer (empty geometry for PCF)
  std::uint64_t pairs = 0;     ///< PCF answer
  vgpu::KernelStats stats;     ///< merged over all executed tiles
  double kernel_seconds = 0.0; ///< makespan: max over lanes of tile sums
  double merge_seconds = 0.0;  ///< wall time of the reduction tree
  double stage_seconds = 0.0;  ///< summed staging wall of kept attempts
  /// Wall time burned on attempts that produced no kept partial: failed
  /// transient retries and the dying attempt that cost a lane. Itemized
  /// separately so productive tile seconds stay clean.
  double waste_seconds = 0.0;
  std::uint64_t waste_events = 0;
  std::size_t shards = 0;
  std::size_t lanes_used = 0;
  std::size_t lanes_lost = 0;
  std::size_t tiles_total = 0;
  std::size_t tiles_failed_over = 0;
  /// Straggler hedges: attempts launched by the watchdog, and how many of
  /// them won the race (the stalled primary's time went to waste instead).
  std::size_t tiles_hedged = 0;
  std::size_t hedge_wins = 0;
  /// Tile results that failed an algebraic invariant (count conservation);
  /// each cost its lane and was re-executed on an independent one.
  std::uint64_t integrity_violations = 0;
  std::size_t staged_bytes = 0;
  /// What a replicate-everywhere schedule (kernels/multi.hpp) would have
  /// moved for the same lane count: lanes_used x the full dataset.
  std::size_t replicated_bytes = 0;
  std::string variant_name;
  std::vector<TileSpan> spans;  ///< tile-id order, one entry per tile
};

class Executor {
 public:
  /// Fires when a lane is lost: (lane index, tiles rerouted to survivors).
  using FailoverHook =
      std::function<void(std::size_t lane, std::size_t tiles)>;

  /// `router` may be null (every run stages from scratch); when set, it
  /// must outlive the executor and is shared across runs for warm staging.
  explicit Executor(Router* router = nullptr) : router_(router) {}

  /// Execute `desc` over `pts` sharded K ways across `lanes`. Throws
  /// vgpu::DeviceError only when every lane has died.
  Report run(std::span<const Lane> lanes, const PointsSoA& pts,
             const kernels::ProblemDesc& desc, const Options& opt,
             const FailoverHook& on_failover = {});

 private:
  Router* router_;
};

}  // namespace tbs::shard
