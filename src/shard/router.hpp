// Router — partition-aware staging bookkeeping for sharded execution.
//
// Lanes are long-lived (a serve worker's device or the CPU slot), so the
// shards of a repeatedly-queried dataset should be staged once and then
// hit warm on every subsequent query. The router records which shard
// fingerprints each lane currently holds; the executor asks before every
// stage and skips the transfer on a hit. Losing a lane (a device_lost
// fault) evicts its entire staged set, so failover re-stages honestly.
//
// Keys are the per-shard FNV-1a fingerprints from partition.hpp — content
// plus (index, K) position — so re-partitioning the same dataset with a
// different K or strategy never false-hits.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

namespace tbs::shard {

class Router {
 public:
  struct Stats {
    std::uint64_t stage_hits = 0;    ///< stage skipped, data already there
    std::uint64_t stage_misses = 0;  ///< stage performed
    std::uint64_t evictions = 0;     ///< lanes wiped by failure
  };

  /// True when `lane` must stage the shard with this fingerprint (and
  /// records it as staged — call only when the caller will stage on a
  /// miss). Thread-safe.
  bool needs_staging(std::size_t lane, std::uint64_t shard_fp);

  /// Drop everything staged on a lane (the lane's device was lost).
  void evict_lane(std::size_t lane);

  [[nodiscard]] Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unordered_set<std::uint64_t>> staged_;  ///< per lane
  Stats stats_;
};

}  // namespace tbs::shard
