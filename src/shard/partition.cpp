#include "shard/partition.hpp"

#include "common/error.hpp"
#include "common/fingerprint.hpp"

namespace tbs::shard {

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::Contiguous: return "contiguous";
    case Strategy::Hashed: return "hashed";
  }
  return "?";
}

std::size_t Partition::total_points() const {
  std::size_t n = 0;
  for (const Shard& s : shards) n += s.pts.size();
  return n;
}

namespace {

/// Shard selector for the Hashed strategy: FNV-1a over the coordinate
/// bytes, so placement depends only on the point's value.
std::size_t hash_shard(const Point3& p, std::size_t shards) {
  Fnv1a h;
  h.bytes(&p.x, sizeof(p.x));
  h.bytes(&p.y, sizeof(p.y));
  h.bytes(&p.z, sizeof(p.z));
  return static_cast<std::size_t>(h.value() % shards);
}

}  // namespace

Partition make_partition(const PointsSoA& pts, std::size_t shards,
                         Strategy strategy) {
  check(shards >= 1, "make_partition: need at least one shard");

  Partition part;
  part.strategy = strategy;
  part.dataset_fp = dataset_fingerprint(pts);
  part.shards.resize(shards);
  for (std::size_t s = 0; s < shards; ++s) part.shards[s].index = s;

  const std::size_t n = pts.size();
  if (strategy == Strategy::Contiguous) {
    // Shard i takes [i*n/K, (i+1)*n/K) — sizes differ by at most one.
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t lo = s * n / shards;
      const std::size_t hi = (s + 1) * n / shards;
      part.shards[s].pts.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i)
        part.shards[s].pts.push_back(pts[i]);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const Point3 p = pts[i];
      part.shards[hash_shard(p, shards)].pts.push_back(p);
    }
  }

  for (Shard& s : part.shards)
    s.fingerprint = shard_fingerprint(s.pts, s.index, shards);
  return part;
}

}  // namespace tbs::shard
