#include "obs/profile.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <functional>

#include "backend/backend.hpp"
#include "common/datagen.hpp"
#include "common/error.hpp"
#include "kernels/registry.hpp"
#include "obs/json.hpp"
#include "perfmodel/counts.hpp"

namespace tbs::obs {

Profiler::Profiler(vgpu::Device& device, Tracer* tracer, std::size_t keep)
    : dev_(&device), tracer_(tracer), keep_(keep) {
  dev_->set_launch_observer(
      [this](const vgpu::LaunchRecord& rec) { on_launch(rec); });
}

Profiler::~Profiler() { dev_->set_launch_observer(nullptr); }

void Profiler::on_launch(const vgpu::LaunchRecord& rec) {
  if (tracer_ != nullptr && tracer_->enabled()) {
    // The launch just finished; reconstruct its interval from wall time so
    // it lands nested under whatever span the draining thread has open.
    const auto now = Tracer::Clock::now();
    const auto start =
        now - std::chrono::duration_cast<Tracer::Clock::duration>(
                  std::chrono::duration<double>(rec.wall_seconds));
    tracer_->record_span(
        "vgpu.launch", "vgpu", start, now,
        {{"grid", std::to_string(rec.cfg.grid_dim)},
         {"block", std::to_string(rec.cfg.block_dim)},
         {"warp_cycles", json::number(rec.stats->total_warp_cycles)},
         {"pooled", rec.pooled ? "true" : "false"}});
  }
  const std::lock_guard<std::mutex> lock(mu_);
  Sample s;
  s.cfg = rec.cfg;
  s.stats = *rec.stats;
  s.wall_seconds = rec.wall_seconds;
  s.launch_index = rec.launch_index;
  s.pooled = rec.pooled;
  ring_.push_back(std::move(s));
  while (ring_.size() > keep_) ring_.pop_front();
  total_.merge(*rec.stats);
  ++launches_;
}

std::vector<Profiler::Sample> Profiler::samples() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

vgpu::KernelStats Profiler::total() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t Profiler::launches() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return launches_;
}

// --- drift ------------------------------------------------------------------

std::vector<std::pair<std::string, double>> drift_counters(
    const vgpu::KernelStats& s) {
  return {
      {"global_loads", static_cast<double>(s.global_loads)},
      {"global_stores", static_cast<double>(s.global_stores)},
      {"global_atomics", static_cast<double>(s.global_atomics)},
      {"roc_loads", static_cast<double>(s.roc_loads)},
      {"shared_loads", static_cast<double>(s.shared_loads)},
      {"shared_stores", static_cast<double>(s.shared_stores)},
      {"shared_atomics", static_cast<double>(s.shared_atomics)},
      {"shuffles", static_cast<double>(s.shuffles)},
      {"total_warp_cycles", s.total_warp_cycles},
  };
}

double DriftReport::max_rel_error() const {
  double worst_err = 0.0;
  for (const DriftRow& r : rows) worst_err = std::max(worst_err, r.rel_error);
  return worst_err;
}

const DriftRow* DriftReport::worst() const {
  const DriftRow* out = nullptr;
  for (const DriftRow& r : rows)
    if (out == nullptr || r.rel_error > out->rel_error) out = &r;
  return out;
}

bool DriftReport::within_tolerance() const {
  return max_rel_error() <= tolerance;
}

void DriftReport::enforce() const {
  if (within_tolerance()) return;
  const DriftRow* w = worst();
  fail("drift report: model-vs-measured error " +
       std::to_string(w->rel_error * 100) + "% on " + w->variant + "/" +
       w->counter + " (predicted " + std::to_string(w->predicted) +
       ", measured " + std::to_string(w->measured) + ") exceeds tolerance " +
       std::to_string(tolerance * 100) + "%");
}

std::string DriftReport::to_json() const {
  std::string out = "{\n  \"tolerance\": " + json::number(tolerance) +
                    ",\n  \"verify_n\": " + json::number(verify_n) +
                    ",\n  \"backend\": \"" + json::escape(backend) + "\"" +
                    ",\n  \"max_rel_error\": " + json::number(max_rel_error()) +
                    ",\n  \"within_tolerance\": " +
                    (within_tolerance() ? "true" : "false") +
                    ",\n  \"skipped\": [";
  for (std::size_t i = 0; i < skipped.size(); ++i) {
    out += "\"" + json::escape(skipped[i]) + "\"";
    if (i + 1 < skipped.size()) out += ", ";
  }
  out += "],\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const DriftRow& r = rows[i];
    out += "    {\"variant\": \"" + json::escape(r.variant) +
           "\", \"counter\": \"" + json::escape(r.counter) +
           "\", \"predicted\": " + json::number(r.predicted) +
           ", \"measured\": " + json::number(r.measured) +
           ", \"rel_error\": " + json::number(r.rel_error) + "}";
    if (i + 1 < rows.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool DriftReport::write_json(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << to_json();
  return static_cast<bool>(os);
}

bool has_simulated_counters(const vgpu::KernelStats& s) {
  for (const auto& [name, value] : drift_counters(s))
    if (value != 0.0) return true;
  return false;
}

namespace {

/// The launch-agnostic sweep body shared by both check_drift overloads.
/// `can_launch` filters candidates; `measure` runs one variant at size n
/// (fresh deterministic dataset, outputs discarded — calibration style).
DriftReport drift_sweep(
    const DriftOptions& opt, unsigned mask, std::string backend_name,
    const std::function<bool(const kernels::KernelVariant&,
                             const kernels::ProblemDesc&)>& can_launch,
    const std::function<vgpu::KernelStats(const kernels::KernelVariant&,
                                          const kernels::ProblemDesc&,
                                          double)>& measure) {
  check(opt.calib_ns[0] < opt.calib_ns[1] && opt.calib_ns[1] < opt.calib_ns[2],
        "check_drift: calibration sizes must be strictly increasing");
  check(opt.verify_n > opt.calib_ns[2],
        "check_drift: verify_n must exceed the largest calibration size");

  DriftReport report;
  report.tolerance = opt.tolerance;
  report.verify_n = opt.verify_n;
  report.backend = std::move(backend_name);

  // Fixed histogram geometry across sizes: derive the bucket width from the
  // verify-size dataset once, so every calibration launch computes the same
  // statistic the verification launch does.
  const PointsSoA ref =
      uniform_box(static_cast<std::size_t>(opt.verify_n), 10.0f, /*seed=*/42);
  const double width =
      ref.max_possible_distance() / opt.buckets + 1e-4;

  const kernels::KernelRegistry& registry = kernels::KernelRegistry::instance();
  for (const kernels::ProblemType type :
       {kernels::ProblemType::Sdh, kernels::ProblemType::Pcf}) {
    const kernels::ProblemDesc desc =
        type == kernels::ProblemType::Sdh
            ? kernels::ProblemDesc::sdh(width, opt.buckets)
            : kernels::ProblemDesc::pcf(opt.radius);
    const auto variants = opt.plannable_only
                              ? registry.plannable(type, mask)
                              : registry.for_problem(type, mask);
    for (const kernels::KernelVariant* kernel : variants) {
      if (!opt.only_variants.empty() &&
          std::find(opt.only_variants.begin(), opt.only_variants.end(),
                    kernel->name) == opt.only_variants.end())
        continue;
      if (!can_launch(*kernel, desc))
        continue;  // not launchable at this block size on this substrate

      Span span(Tracer::global(), "obs.drift_check", "obs");
      span.attr("variant", kernel->name);
      span.attr("backend", report.backend);

      std::array<vgpu::KernelStats, 3> samples;
      for (std::size_t i = 0; i < opt.calib_ns.size(); ++i)
        samples[i] = measure(*kernel, desc, opt.calib_ns[i]);
      // Skip rule: a run with no simulated device counters (a CPU launch)
      // has nothing for the Eqs. 2–7 polynomial to predict — every counter
      // is identically zero on the host substrate. Comparing would either
      // pass vacuously or, mixed with nonzero rows, report spurious 100%
      // drift. Record the skip so the report stays auditable.
      if (!has_simulated_counters(samples[0])) {
        report.skipped.push_back(kernel->name);
        span.attr("skipped", "no_simulated_counters");
        continue;
      }
      const perfmodel::StatsPoly poly(opt.calib_ns, samples);
      const vgpu::KernelStats predicted = poly.predict(opt.verify_n);
      const vgpu::KernelStats measured = measure(*kernel, desc, opt.verify_n);

      const auto pred_counters = drift_counters(predicted);
      const auto meas_counters = drift_counters(measured);
      for (std::size_t c = 0; c < pred_counters.size(); ++c) {
        DriftRow row;
        row.variant = kernel->name;
        row.counter = pred_counters[c].first;
        row.predicted = pred_counters[c].second;
        row.measured = meas_counters[c].second;
        row.rel_error = std::fabs(row.predicted - row.measured) /
                        std::max(std::fabs(row.measured), 1.0);
        report.rows.push_back(std::move(row));
      }
    }
  }
  check(!report.rows.empty() || !report.skipped.empty(),
        "check_drift: no launchable variant matched");
  return report;
}

}  // namespace

DriftReport check_drift(vgpu::Stream& stream, const DriftOptions& opt) {
  return drift_sweep(
      opt, kernels::kBackendVgpu, "vgpu:" + stream.device().spec().name,
      [&](const kernels::KernelVariant& kernel,
          const kernels::ProblemDesc& desc) {
        return kernel.shared_bytes(opt.block_size, desc.buckets) <=
               stream.device().spec().shared_mem_per_block_cap;
      },
      [&](const kernels::KernelVariant& kernel,
          const kernels::ProblemDesc& desc, double n) {
        const PointsSoA pts =
            uniform_box(static_cast<std::size_t>(n), 10.0f, /*seed=*/42);
        kernels::KernelOutput sink;
        return kernel.launch(stream, pts, desc, opt.block_size, sink);
      });
}

DriftReport check_drift(backend::IBackend& be, const DriftOptions& opt) {
  return drift_sweep(
      opt, be.caps().registry_mask, be.caps().name,
      [&](const kernels::KernelVariant& kernel,
          const kernels::ProblemDesc& desc) {
        return be.can_launch(kernel, desc, opt.block_size);
      },
      [&](const kernels::KernelVariant& kernel,
          const kernels::ProblemDesc& desc, double n) {
        const PointsSoA pts =
            uniform_box(static_cast<std::size_t>(n), 10.0f, /*seed=*/42);
        kernels::KernelOutput sink;
        return be.launch(kernel, pts, desc, opt.block_size, sink);
      });
}

namespace {

/// A span name with ';' or ' ' would corrupt the collapsed-stack grammar
/// (semicolon separates frames, the last space separates the value).
std::string frame_name(const std::string& name) {
  std::string out = name.empty() ? std::string("<anonymous>") : name;
  for (char& c : out)
    if (c == ';' || c == ' ' || c == '\n') c = '_';
  return out;
}

/// Resolve each span's parent index (-1 = root): by recorded span ids when
/// the child's parent_id names a span we hold, else by per-thread (ts,
/// depth) nesting — a span encloses every later same-thread span of
/// greater depth until one of depth <= its own closes the scope.
std::vector<int> resolve_parents(const std::vector<SpanRecord>& spans) {
  std::vector<int> parent(spans.size(), -1);
  std::map<std::uint64_t, int> by_id;
  for (std::size_t i = 0; i < spans.size(); ++i)
    if (spans[i].span_id != 0)
      by_id[spans[i].span_id] = static_cast<int>(i);

  std::vector<int> order(spans.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const SpanRecord& sa = spans[static_cast<std::size_t>(a)];
    const SpanRecord& sb = spans[static_cast<std::size_t>(b)];
    if (sa.tid != sb.tid) return sa.tid < sb.tid;
    if (sa.ts_us != sb.ts_us) return sa.ts_us < sb.ts_us;
    return sa.depth < sb.depth;
  });

  std::map<std::uint32_t, std::vector<int>> stacks;
  for (const int i : order) {
    const SpanRecord& s = spans[static_cast<std::size_t>(i)];
    std::vector<int>& stack = stacks[s.tid];
    while (!stack.empty()) {
      const SpanRecord& top = spans[static_cast<std::size_t>(stack.back())];
      if (top.depth >= s.depth || top.ts_us + top.dur_us <= s.ts_us)
        stack.pop_back();
      else
        break;
    }
    if (s.parent_id != 0) {
      const auto it = by_id.find(s.parent_id);
      if (it != by_id.end() && it->second != i) {
        parent[static_cast<std::size_t>(i)] = it->second;
        stack.push_back(i);
        continue;
      }
    }
    parent[static_cast<std::size_t>(i)] = stack.empty() ? -1 : stack.back();
    stack.push_back(i);
  }
  return parent;
}

/// Full "a;b;c" path per span, memoized; a defensive hop cap breaks any
/// parent cycle a malformed record set could encode.
std::vector<std::string> resolve_paths(const std::vector<SpanRecord>& spans,
                                       const std::vector<int>& parent) {
  std::vector<std::string> paths(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    std::vector<int> chain;
    int cur = static_cast<int>(i);
    while (cur >= 0 && chain.size() <= spans.size()) {
      chain.push_back(cur);
      const std::size_t u = static_cast<std::size_t>(cur);
      if (!paths[u].empty() && cur != static_cast<int>(i)) break;
      cur = parent[u];
    }
    std::string prefix;
    int resolved = -1;
    if (!chain.empty()) {
      const std::size_t last = static_cast<std::size_t>(chain.back());
      if (!paths[last].empty() && chain.back() != static_cast<int>(i)) {
        prefix = paths[last];
        resolved = chain.back();
      }
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (*it == resolved) continue;
      const std::size_t u = static_cast<std::size_t>(*it);
      if (!prefix.empty()) prefix += ';';
      prefix += frame_name(spans[u].name);
      paths[u] = prefix;
    }
  }
  return paths;
}

}  // namespace

std::vector<TimeAccountRow> time_accounting(
    const std::vector<SpanRecord>& spans) {
  const std::vector<int> parent = resolve_parents(spans);
  const std::vector<std::string> paths = resolve_paths(spans, parent);

  std::vector<double> self(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) self[i] = spans[i].dur_us;
  for (std::size_t i = 0; i < spans.size(); ++i)
    if (parent[i] >= 0)
      self[static_cast<std::size_t>(parent[i])] -= spans[i].dur_us;

  std::map<std::string, TimeAccountRow> rows;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    TimeAccountRow& row = rows[paths[i]];
    row.path = paths[i];
    row.total_us += spans[i].dur_us;
    row.self_us += std::max(0.0, self[i]);
    ++row.count;
  }
  std::vector<TimeAccountRow> out;
  out.reserve(rows.size());
  for (auto& [path, row] : rows) out.push_back(std::move(row));
  std::sort(out.begin(), out.end(),
            [](const TimeAccountRow& a, const TimeAccountRow& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.path < b.path;
            });
  return out;
}

std::string collapsed_stacks(const std::vector<SpanRecord>& spans) {
  // Aggregate self time per path; the flamegraph tool reconstructs
  // inclusive time by stacking children, so self is the right value.
  std::map<std::string, double> folded;
  for (const TimeAccountRow& row : time_accounting(spans))
    folded[row.path] += row.self_us;
  std::string out;
  for (const auto& [path, self_us] : folded) {
    const long long us = std::llround(self_us);
    if (us <= 0) continue;
    out += path;
    out += ' ';
    out += std::to_string(us);
    out += '\n';
  }
  return out;
}

std::string collapsed_stacks(const Tracer& tracer) {
  return collapsed_stacks(tracer.snapshot());
}

std::string time_accounting_text(const std::vector<TimeAccountRow>& rows,
                                 std::size_t max_rows) {
  std::string out =
      "total_ms     self_ms      count  stack\n"
      "-----------  -----------  -----  -----\n";
  std::size_t shown = 0;
  for (const TimeAccountRow& row : rows) {
    if (shown++ >= max_rows) {
      out += "... (" + std::to_string(rows.size() - max_rows) +
             " more rows)\n";
      break;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%11.3f  %11.3f  %5llu  ",
                  row.total_us / 1000.0, row.self_us / 1000.0,
                  static_cast<unsigned long long>(row.count));
    out += buf;
    out += row.path;
    out += '\n';
  }
  return out;
}

bool write_collapsed(const Tracer& tracer, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  os << collapsed_stacks(tracer);
  return static_cast<bool>(os);
}

}  // namespace tbs::obs
