#include "obs/slo.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tbs::obs {

SloMonitor::SloMonitor(Objective objective)
    : objective_(objective), epoch_(Clock::now()) {
  if (!enabled()) return;
  check(objective_.window_seconds > 0.0,
        "SloMonitor: window_seconds must be positive");
  check(objective_.buckets >= 1, "SloMonitor: need at least one bucket");
  check(objective_.latency_target > 0.0 && objective_.latency_target < 1.0,
        "SloMonitor: latency_target must be in (0, 1)");
  check(objective_.error_budget > 0.0 && objective_.error_budget <= 1.0,
        "SloMonitor: error_budget must be in (0, 1]");
  bucket_seconds_ = objective_.window_seconds /
                    static_cast<double>(objective_.buckets);
  ring_.resize(objective_.buckets);
}

SloMonitor::Bucket& SloMonitor::advance(Clock::time_point now) {
  const double elapsed =
      std::chrono::duration<double>(now - epoch_).count();
  const auto index =
      static_cast<std::int64_t>(elapsed / bucket_seconds_);
  Bucket& b = ring_[static_cast<std::size_t>(index) % ring_.size()];
  if (b.index != index) b = Bucket{index, 0, 0, 0};
  return b;
}

SloMonitor::Status SloMonitor::window_status(Clock::time_point now) const {
  const double elapsed =
      std::chrono::duration<double>(now - epoch_).count();
  const auto live =
      static_cast<std::int64_t>(elapsed / bucket_seconds_);
  Status st;
  for (const Bucket& b : ring_) {
    // A bucket is in-window when it is one of the last `buckets` indices.
    if (b.index < 0 ||
        b.index <= live - static_cast<std::int64_t>(ring_.size()))
      continue;
    st.total += b.total;
    st.errors += b.errors;
    st.slow += b.slow;
  }
  if (st.total > 0) {
    st.error_rate = static_cast<double>(st.errors) /
                    static_cast<double>(st.total);
    st.slow_rate = static_cast<double>(st.slow) /
                   static_cast<double>(st.total);
  }
  st.latency_burn_rate = st.slow_rate / (1.0 - objective_.latency_target);
  st.error_burn_rate = st.error_rate / objective_.error_budget;
  if (st.total >= objective_.min_samples) {
    st.latency_breached = st.latency_burn_rate > 1.0;
    st.error_breached = st.error_burn_rate > 1.0;
  }
  return st;
}

bool SloMonitor::record(double latency_seconds, bool error) {
  if (!enabled()) return false;
  const Clock::time_point now = Clock::now();
  const std::lock_guard<std::mutex> lock(mu_);
  Bucket& b = advance(now);
  ++b.total;
  if (error) ++b.errors;
  if (latency_seconds > objective_.latency_seconds) ++b.slow;
  const Status st = window_status(now);
  if (!st.breached()) {
    in_breach_ = false;
    return false;
  }
  if (in_breach_) return false;  // still inside the same incident
  in_breach_ = true;
  ++breaches_;
  if (st.latency_breached) ++latency_breaches_;
  if (st.error_breached) ++error_breaches_;
  return true;
}

SloMonitor::Status SloMonitor::status() const {
  if (!enabled()) return Status{};
  const std::lock_guard<std::mutex> lock(mu_);
  return window_status(Clock::now());
}

std::uint64_t SloMonitor::breaches() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return breaches_;
}

std::uint64_t SloMonitor::latency_breaches() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return latency_breaches_;
}

std::uint64_t SloMonitor::error_breaches() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return error_breaches_;
}

}  // namespace tbs::obs
