// SloMonitor — rolling-window service-level objectives with burn rates.
//
// An SLO here is two objectives over the last `window_seconds` of query
// completions: a latency objective ("99% of queries finish under 50ms")
// and an error-rate objective ("at most 1% of queries fail"). The monitor
// keeps the window as a ring of time buckets (no per-sample storage), so
// record() is O(1) under one mutex and old traffic ages out bucket by
// bucket instead of all at once.
//
// Burn rate is the standard SRE framing: how fast the window is consuming
// its budget. For the error objective it is error_rate / error_budget;
// for the latency objective, slow_fraction / (1 - latency_target). A burn
// rate of 1.0 means "exactly on budget"; > 1.0 sustained over the window
// means the objective is breached. Breaches are edge-triggered: record()
// returns true only on the transition into breach, so the caller can dump
// a flight recording / retain a trace exactly once per incident instead
// of once per query while unhealthy.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace tbs::obs {

class SloMonitor {
 public:
  struct Objective {
    /// Per-query latency threshold, seconds; <= 0 disables the monitor
    /// entirely (record() becomes a cheap no-op returning false).
    double latency_seconds = 0.0;
    /// Fraction of queries that must finish under the threshold (0.99 =
    /// "p99 under latency_seconds").
    double latency_target = 0.99;
    /// Tolerated failing fraction for the error objective.
    double error_budget = 0.01;
    /// Rolling window length, seconds.
    double window_seconds = 10.0;
    /// Time buckets the window is divided into (aging granularity).
    std::size_t buckets = 10;
    /// Completions required in-window before breaches are judged — a
    /// 1-query window with one slow query is not a 100% burn rate worth
    /// paging over.
    std::size_t min_samples = 10;
  };

  /// In-window aggregate + derived rates, as of the last record()/status().
  struct Status {
    std::uint64_t total = 0;
    std::uint64_t errors = 0;
    std::uint64_t slow = 0;  ///< completions over latency_seconds
    double error_rate = 0.0;
    double slow_rate = 0.0;
    /// slow_rate / (1 - latency_target); > 1 sustained = breached.
    double latency_burn_rate = 0.0;
    /// error_rate / error_budget; > 1 sustained = breached.
    double error_burn_rate = 0.0;
    bool latency_breached = false;
    bool error_breached = false;
    [[nodiscard]] bool breached() const {
      return latency_breached || error_breached;
    }
  };

  explicit SloMonitor(Objective objective);

  [[nodiscard]] const Objective& objective() const { return objective_; }
  [[nodiscard]] bool enabled() const {
    return objective_.latency_seconds > 0.0;
  }

  /// Record one query completion. Returns true exactly when this sample
  /// transitions the window *into* breach (edge-triggered).
  bool record(double latency_seconds, bool error);

  [[nodiscard]] Status status() const;

  /// Total breach transitions since construction (monotonic).
  [[nodiscard]] std::uint64_t breaches() const;
  /// Breach transitions where the latency objective was the (or a) cause.
  [[nodiscard]] std::uint64_t latency_breaches() const;
  /// Breach transitions where the error objective was the (or a) cause.
  [[nodiscard]] std::uint64_t error_breaches() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Bucket {
    std::int64_t index = -1;  ///< absolute bucket index; -1 = empty
    std::uint64_t total = 0;
    std::uint64_t errors = 0;
    std::uint64_t slow = 0;
  };

  /// Rotate stale buckets out and return the live bucket for `now`.
  /// Caller holds mu_.
  Bucket& advance(Clock::time_point now);
  /// Aggregate the in-window buckets into a Status. Caller holds mu_.
  [[nodiscard]] Status window_status(Clock::time_point now) const;

  Objective objective_;
  Clock::time_point epoch_;
  double bucket_seconds_ = 1.0;

  mutable std::mutex mu_;
  std::vector<Bucket> ring_;
  bool in_breach_ = false;
  std::uint64_t breaches_ = 0;
  std::uint64_t latency_breaches_ = 0;
  std::uint64_t error_breaches_ = 0;
};

}  // namespace tbs::obs
