#include "obs/trace.hpp"

#include <fstream>
#include <unordered_map>

#include "obs/json.hpp"

namespace tbs::obs {

namespace {

/// Per-thread open-span count, per tracer (several tracers can be live in
/// one process — tests use private instances alongside the global one).
thread_local std::unordered_map<const Tracer*, int> t_open_depth;

}  // namespace

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

std::size_t Tracer::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<SpanRecord> Tracer::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

void Tracer::record(SpanRecord rec) {
  const std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(rec));
}

void Tracer::record_span(
    std::string_view name, std::string_view cat, Clock::time_point start,
    Clock::time_point end,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        attrs,
    std::uint32_t tid) {
  if (!enabled()) return;
  SpanRecord rec;
  rec.name = std::string(name);
  rec.cat = std::string(cat);
  rec.ts_us = to_us(start);
  rec.dur_us = to_us(end) - rec.ts_us;
  if (rec.dur_us < 0.0) rec.dur_us = 0.0;
  rec.tid = tid == 0 ? thread_tid() : tid;
  rec.depth = t_open_depth[this];  // nests under whatever is open here
  for (const auto& [k, v] : attrs)
    rec.attrs.emplace_back(std::string(k), std::string(v));
  record(std::move(rec));
}

std::uint32_t Tracer::thread_tid() {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] =
      tids_.emplace(std::this_thread::get_id(),
                    static_cast<std::uint32_t>(tids_.size() + 1));
  return it->second;
}

std::uint32_t Tracer::track_tid(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = tracks_.emplace(
      std::string(name),
      kFirstTrackTid + static_cast<std::uint32_t>(tracks_.size()));
  return it->second;
}

std::string Tracer::chrome_trace_json() const {
  const std::vector<SpanRecord> spans = snapshot();
  std::string out;
  out.reserve(128 + spans.size() * 160);
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    out += "  {\"name\": \"";
    out += json::escape(s.name);
    out += "\", \"cat\": \"";
    out += json::escape(s.cat);
    out += "\", \"ph\": \"X\", \"ts\": ";
    out += json::number(s.ts_us);
    out += ", \"dur\": ";
    out += json::number(s.dur_us);
    out += ", \"pid\": 1, \"tid\": ";
    out += std::to_string(s.tid);
    if (!s.attrs.empty()) {
      out += ", \"args\": {";
      for (std::size_t a = 0; a < s.attrs.size(); ++a) {
        if (a != 0) out += ", ";
        out += "\"";
        out += json::escape(s.attrs[a].first);
        out += "\": \"";
        out += json::escape(s.attrs[a].second);
        out += "\"";
      }
      out += "}";
    }
    out += "}";
    if (i + 1 < spans.size()) out += ",";
    out += "\n";
  }
  out += "]}\n";
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << chrome_trace_json();
  return static_cast<bool>(os);
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

Span::Span(Tracer& tracer, std::string_view name, std::string_view cat) {
  if (!tracer.enabled()) return;  // tracer_ stays null: every member no-ops
  tracer_ = &tracer;
  start_ = Tracer::Clock::now();
  rec_.name = std::string(name);
  rec_.cat = std::string(cat);
  rec_.tid = tracer.thread_tid();
  rec_.depth = t_open_depth[&tracer]++;
}

Span::~Span() {
  if (tracer_ == nullptr) return;
  --t_open_depth[tracer_];
  rec_.ts_us = tracer_->to_us(start_);
  rec_.dur_us = tracer_->to_us(Tracer::Clock::now()) - rec_.ts_us;
  tracer_->record(std::move(rec_));
}

void Span::attr(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  rec_.attrs.emplace_back(std::string(key), std::string(value));
}

void Span::attr(std::string_view key, double value) {
  if (tracer_ == nullptr) return;
  rec_.attrs.emplace_back(std::string(key), json::number(value));
}

void Span::attr(std::string_view key, std::uint64_t value) {
  if (tracer_ == nullptr) return;
  rec_.attrs.emplace_back(std::string(key),
                          std::to_string(value));
}

}  // namespace tbs::obs
