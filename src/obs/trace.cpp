#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <unordered_map>

#include "obs/json.hpp"

namespace tbs::obs {

namespace {

/// Per-thread open-span count, per tracer (several tracers can be live in
/// one process — tests use private instances alongside the global one).
thread_local std::unordered_map<const Tracer*, int> t_open_depth;

/// The thread's trace-context stack: the back is what a new span parents
/// on. Shared across tracers deliberately — a query's context must reach
/// planner spans recorded into a different tracer than the engine's.
thread_local std::vector<TraceContext> t_ctx_stack;

}  // namespace

std::atomic<std::uint64_t> Tracer::next_id_{1};

std::uint64_t Tracer::mint_trace_id() {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

std::string trace_id_hex(std::uint64_t id) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[id & 0xF];
    id >>= 4;
  }
  return out;
}

TraceContext current_trace_context() {
  return t_ctx_stack.empty() ? TraceContext{} : t_ctx_stack.back();
}

ScopedTraceContext::ScopedTraceContext(TraceContext ctx) {
  if (!ctx.valid()) return;
  t_ctx_stack.push_back(ctx);
  pushed_ = true;
}

ScopedTraceContext::~ScopedTraceContext() {
  if (pushed_) t_ctx_stack.pop_back();
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

std::size_t Tracer::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<SpanRecord> Tracer::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

void Tracer::record(SpanRecord rec) {
  const std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(rec));
}

void Tracer::record_span(
    std::string_view name, std::string_view cat, Clock::time_point start,
    Clock::time_point end,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        attrs,
    std::uint32_t tid) {
  record_span(name, cat, start, end, TraceContext{}, attrs, tid);
}

void Tracer::record_span(
    std::string_view name, std::string_view cat, Clock::time_point start,
    Clock::time_point end, TraceContext ctx,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        attrs,
    std::uint32_t tid) {
  if (!enabled()) return;
  SpanRecord rec;
  rec.name = std::string(name);
  rec.cat = std::string(cat);
  rec.ts_us = to_us(start);
  rec.dur_us = to_us(end) - rec.ts_us;
  if (rec.dur_us < 0.0) rec.dur_us = 0.0;
  rec.tid = tid == 0 ? thread_tid() : tid;
  rec.depth = t_open_depth[this];  // nests under whatever is open here
  if (ctx.valid()) {
    rec.trace_id = ctx.trace_id;
    rec.parent_id = ctx.span_id;
    rec.span_id = mint_trace_id();
  }
  for (const auto& [k, v] : attrs)
    rec.attrs.emplace_back(std::string(k), std::string(v));
  record(std::move(rec));
}

std::size_t Tracer::drop_trace(std::uint64_t trace_id) {
  if (trace_id == 0) return 0;
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::remove_if(
      spans_.begin(), spans_.end(),
      [trace_id](const SpanRecord& s) { return s.trace_id == trace_id; });
  const auto removed = static_cast<std::size_t>(spans_.end() - it);
  spans_.erase(it, spans_.end());
  return removed;
}

std::uint32_t Tracer::thread_tid() {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] =
      tids_.emplace(std::this_thread::get_id(),
                    static_cast<std::uint32_t>(tids_.size() + 1));
  return it->second;
}

std::uint32_t Tracer::track_tid(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = tracks_.emplace(
      std::string(name),
      kFirstTrackTid + static_cast<std::uint32_t>(tracks_.size()));
  return it->second;
}

std::string Tracer::chrome_trace_json() const {
  const std::vector<SpanRecord> spans = snapshot();

  // Where each minted span lives, for flow events: a parent→child edge
  // that crosses timeline rows gets an "s"/"f" pair so the viewer draws
  // the arrow (same-row edges are already visually nested).
  std::unordered_map<std::uint64_t, const SpanRecord*> by_span_id;
  by_span_id.reserve(spans.size());
  for (const SpanRecord& s : spans)
    if (s.span_id != 0) by_span_id.emplace(s.span_id, &s);

  std::vector<std::string> events;
  events.reserve(spans.size());
  for (const SpanRecord& s : spans) {
    std::string ev = "  {\"name\": \"";
    ev += json::escape(s.name);
    ev += "\", \"cat\": \"";
    ev += json::escape(s.cat);
    ev += "\", \"ph\": \"X\", \"ts\": ";
    ev += json::number(s.ts_us);
    ev += ", \"dur\": ";
    ev += json::number(s.dur_us);
    ev += ", \"pid\": 1, \"tid\": ";
    ev += std::to_string(s.tid);
    if (!s.attrs.empty() || s.trace_id != 0) {
      ev += ", \"args\": {";
      bool first = true;
      if (s.trace_id != 0) {
        ev += "\"trace_id\": \"" + trace_id_hex(s.trace_id) + "\"";
        ev += ", \"span_id\": \"" + trace_id_hex(s.span_id) + "\"";
        ev += ", \"parent_id\": \"" + trace_id_hex(s.parent_id) + "\"";
        first = false;
      }
      for (const auto& [k, v] : s.attrs) {
        if (!first) ev += ", ";
        first = false;
        ev += "\"";
        ev += json::escape(k);
        ev += "\": \"";
        ev += json::escape(v);
        ev += "\"";
      }
      ev += "}";
    }
    ev += "}";
    events.push_back(std::move(ev));

    // Cross-row causal edge: flow start inside the parent, flow finish
    // (binding point "enclosing slice") at this span's start.
    if (s.trace_id == 0 || s.parent_id == 0) continue;
    const auto pit = by_span_id.find(s.parent_id);
    if (pit == by_span_id.end() || pit->second->tid == s.tid) continue;
    const SpanRecord& p = *pit->second;
    const std::string id = "\"" + trace_id_hex(s.span_id) + "\"";
    events.push_back(
        "  {\"name\": \"" + json::escape(s.name) +
        "\", \"cat\": \"flow\", \"ph\": \"s\", \"id\": " + id +
        ", \"ts\": " + json::number(p.ts_us) +
        ", \"pid\": 1, \"tid\": " + std::to_string(p.tid) + "}");
    events.push_back(
        "  {\"name\": \"" + json::escape(s.name) +
        "\", \"cat\": \"flow\", \"ph\": \"f\", \"bp\": \"e\", \"id\": " + id +
        ", \"ts\": " + json::number(s.ts_us) +
        ", \"pid\": 1, \"tid\": " + std::to_string(s.tid) + "}");
  }

  std::string out;
  out.reserve(128 + events.size() * 160);
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    out += events[i];
    if (i + 1 < events.size()) out += ",";
    out += "\n";
  }
  out += "]}\n";
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << chrome_trace_json();
  return static_cast<bool>(os);
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

Span::Span(Tracer& tracer, std::string_view name, std::string_view cat) {
  open(tracer, name, cat, current_trace_context());
}

Span::Span(Tracer& tracer, std::string_view name, std::string_view cat,
           TraceContext parent) {
  open(tracer, name, cat, parent);
}

void Span::open(Tracer& tracer, std::string_view name, std::string_view cat,
                TraceContext parent) {
  if (!tracer.enabled()) return;  // tracer_ stays null: every member no-ops
  tracer_ = &tracer;
  start_ = Tracer::Clock::now();
  rec_.name = std::string(name);
  rec_.cat = std::string(cat);
  rec_.tid = tracer.thread_tid();
  rec_.depth = t_open_depth[&tracer]++;
  if (parent.valid()) {
    rec_.trace_id = parent.trace_id;
    rec_.parent_id = parent.span_id;
    rec_.span_id = Tracer::mint_trace_id();
    t_ctx_stack.push_back(TraceContext{rec_.trace_id, rec_.span_id});
    pushed_ctx_ = true;
  }
}

Span::~Span() {
  if (tracer_ == nullptr) return;
  if (pushed_ctx_) t_ctx_stack.pop_back();
  --t_open_depth[tracer_];
  rec_.ts_us = tracer_->to_us(start_);
  rec_.dur_us = tracer_->to_us(Tracer::Clock::now()) - rec_.ts_us;
  tracer_->record(std::move(rec_));
}

void Span::attr(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  rec_.attrs.emplace_back(std::string(key), std::string(value));
}

void Span::attr(std::string_view key, double value) {
  if (tracer_ == nullptr) return;
  rec_.attrs.emplace_back(std::string(key), json::number(value));
}

void Span::attr(std::string_view key, std::uint64_t value) {
  if (tracer_ == nullptr) return;
  rec_.attrs.emplace_back(std::string(key),
                          std::to_string(value));
}

}  // namespace tbs::obs
