// Tracing — RAII spans over a thread-safe collector with a Chrome
// trace-event exporter.
//
// The paper argues from profiler timelines; tbs::serve argues from this
// file. A Span marks one timed region (a query's submit path, a worker's
// execute, a planner calibration, one kernel launch); the Tracer collects
// completed spans and exports them in the Chrome trace-event format, so any
// run's `trace.json` opens directly in Perfetto (https://ui.perfetto.dev)
// or chrome://tracing and shows where a query's life went: queue wait vs
// plan vs calibration vs kernel vs reduction.
//
// Overhead discipline: a disabled tracer costs one relaxed atomic load per
// span — Span's constructor latches the enabled check and every other
// member becomes a no-op. Enabled spans take one mutex acquisition at
// destruction (record) and none during their lifetime. Span nesting is
// tracked per thread; spans on one thread must strictly nest (RAII
// guarantees this for stack-scoped spans).
//
// Span taxonomy (see DESIGN.md "Observability" for the full catalogue):
//   serve.submit / serve.queue_wait / serve.execute      — engine path
//   core.plan / core.plan.gate_wait / core.plan.calibrate — planner path
//   vgpu.launch                                           — per kernel launch
//
// Trace context: every span may carry a (trace_id, span_id, parent_id)
// triple giving it a causal identity — all spans of one query share a
// trace_id minted at submit, and parent linkage reconstructs the query's
// tree across worker threads and shard lanes. Context propagates two ways:
// explicitly (the Span constructor taking a TraceContext, and the
// record_span overload for retroactive spans) and implicitly (an active
// Span pushes its own context onto a thread-local stack, so spans opened
// further down the call chain — planner, retry backoff — inherit it
// without any plumbing; ScopedTraceContext installs a context on a thread
// that has no enclosing Span, e.g. a shard lane thread). The Chrome export
// emits the triple in each event's args and adds flow events ("s"/"f")
// linking cross-thread parent→child edges, so Perfetto draws the arrows.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace tbs::obs {

/// A query's causal identity: the trace it belongs to and the span that
/// caused the current work. trace_id 0 means "no context" everywhere.
struct TraceContext {
  std::uint64_t trace_id = 0;  ///< shared by every span of one query
  std::uint64_t span_id = 0;   ///< the parent span (0 = trace root)
  [[nodiscard]] bool valid() const { return trace_id != 0; }
};

/// Format a trace/span id the way every exporter does: 16 lowercase hex
/// digits ("0000000000000000" for the null id).
std::string trace_id_hex(std::uint64_t id);

/// The innermost context installed on this thread (by an active Span or a
/// ScopedTraceContext); {0, 0} when none.
TraceContext current_trace_context();

/// Install `ctx` as the thread's current context for the scope's lifetime —
/// how a context crosses a thread boundary the Span stack can't (shard
/// lane threads, telemetry callbacks). Not copyable/movable: strictly
/// stack-scoped, like Span.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx);
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;
  ~ScopedTraceContext();

 private:
  bool pushed_ = false;  ///< invalid contexts are not installed
};

/// One completed span, timestamped in microseconds since the tracer epoch.
struct SpanRecord {
  std::string name;
  std::string cat;
  double ts_us = 0.0;   ///< start, µs since tracer epoch
  double dur_us = 0.0;  ///< duration, µs
  std::uint32_t tid = 0;  ///< small per-tracer thread id
  int depth = 0;          ///< nesting depth on its thread at open time
  std::uint64_t trace_id = 0;   ///< query identity; 0 = no context
  std::uint64_t span_id = 0;    ///< this span's own id (0 = none minted)
  std::uint64_t parent_id = 0;  ///< causal parent's span_id (0 = root)
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// Thread-safe span collector + Chrome trace-event exporter.
class Tracer {
 public:
  using Clock = std::chrono::steady_clock;

  Tracer() : epoch_(Clock::now()) {}

  /// Collection is off by default; a disabled tracer makes every Span a
  /// no-op. Flipping mid-run is safe (spans open across the flip resolve
  /// with the state they latched at construction).
  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drop every collected span (the epoch is preserved).
  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  /// Append a fully-formed record (the Span destructor's path; also how
  /// retroactive spans like queue-wait are emitted).
  void record(SpanRecord rec);

  /// Record a span from explicit clock endpoints — for intervals measured
  /// outside RAII scope (e.g. a job's queue wait, known only at pop time).
  /// `tid` 0 means "the calling thread"; pass a track_tid() for spans that
  /// may overlap the thread's RAII spans.
  void record_span(
      std::string_view name, std::string_view cat, Clock::time_point start,
      Clock::time_point end,
      std::initializer_list<std::pair<std::string_view, std::string_view>>
          attrs = {},
      std::uint32_t tid = 0);

  /// record_span() with an explicit causal parent: the recorded span joins
  /// `ctx`'s trace as a child of ctx.span_id and gets its own minted
  /// span_id. An invalid ctx degrades to the plain overload.
  void record_span(
      std::string_view name, std::string_view cat, Clock::time_point start,
      Clock::time_point end, TraceContext ctx,
      std::initializer_list<std::pair<std::string_view, std::string_view>>
          attrs = {},
      std::uint32_t tid = 0);

  /// Mint a process-unique nonzero trace id (also the span-id pool; one
  /// process-wide atomic, no lock — callable from any thread, even with
  /// the tracer disabled, so exemplars and flight dumps can name a trace
  /// that was never collected. Process-wide because a query's spans may
  /// land in several tracers: engine spans in Config::tracer, planner
  /// spans in the global one).
  static std::uint64_t mint_trace_id();

  /// Drop every collected span belonging to `trace_id` (the sampling
  /// policy's "this query was healthy and unsampled" path). Returns the
  /// number of spans removed. trace_id 0 is a no-op — it would match every
  /// context-free span.
  std::size_t drop_trace(std::uint64_t trace_id);

  /// Microseconds from the tracer epoch to `t`.
  [[nodiscard]] double to_us(Clock::time_point t) const {
    return std::chrono::duration<double, std::micro>(t - epoch_).count();
  }

  /// Small dense id for the calling thread (stable within this tracer).
  /// Thread ids start at 1.
  std::uint32_t thread_tid();

  /// Stable id for a named synthetic track. Track ids start at
  /// kFirstTrackTid, above any real thread id — retroactive spans that can
  /// overlap a thread's RAII spans (e.g. a job's queue wait, which spans
  /// the time a worker was busy executing the previous job) are recorded
  /// on tracks so per-thread spans still strictly nest.
  std::uint32_t track_tid(std::string_view name);

  static constexpr std::uint32_t kFirstTrackTid = 1000;

  /// The full trace as a Chrome trace-event JSON document ("X" complete
  /// events, µs timestamps). Loads in Perfetto / chrome://tracing.
  /// Spans with a trace context carry trace_id/span_id/parent_id in their
  /// args; cross-thread parent→child edges additionally get a flow-event
  /// pair ("s" at the parent, "f" at the child) so the viewer draws the
  /// causal arrow between timeline rows.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Write chrome_trace_json() to `path`; false if the file won't open.
  bool write_chrome_trace(const std::string& path) const;

  /// Process-wide default tracer (disabled until someone enables it); the
  /// engine, planner, and benches default to this instance.
  static Tracer& global();

 private:
  friend class Span;

  /// One span-id mint for the whole process (see mint_trace_id()).
  static std::atomic<std::uint64_t> next_id_;

  std::atomic<bool> enabled_{false};
  Clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::map<std::thread::id, std::uint32_t> tids_;
  std::map<std::string, std::uint32_t, std::less<>> tracks_;
};

/// RAII timed region. Construct to open, destroy to record. Attributes are
/// key/value strings attached to the Chrome event's `args`. Not copyable or
/// movable: a span is a stack frame, and stack discipline is what makes the
/// per-thread nesting invariant hold.
class Span {
 public:
  /// Open a span on `tracer` (no-op if the tracer is disabled). The span
  /// joins the thread's current trace context when one is installed: its
  /// parent is the innermost enclosing Span (or ScopedTraceContext), and
  /// it installs itself as the context for anything opened beneath it.
  Span(Tracer& tracer, std::string_view name, std::string_view cat);

  /// Open a span with an explicit causal parent (how a trace is rooted at
  /// submit — parent {trace_id, 0} — and how it crosses the queue onto a
  /// worker thread, where the thread-local stack knows nothing).
  Span(Tracer& tracer, std::string_view name, std::string_view cat,
       TraceContext parent);

  /// Open a span on the global tracer.
  Span(std::string_view name, std::string_view cat)
      : Span(Tracer::global(), name, cat) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span();

  /// True when the tracer was enabled at construction (attrs will stick).
  [[nodiscard]] bool active() const { return tracer_ != nullptr; }

  /// This span's context — what a child on another thread should parent
  /// on: {trace_id, own span_id}. {0, 0} when inactive or context-free.
  [[nodiscard]] TraceContext context() const {
    return TraceContext{rec_.trace_id, rec_.span_id};
  }

  void attr(std::string_view key, std::string_view value);
  void attr(std::string_view key, double value);
  void attr(std::string_view key, std::uint64_t value);

 private:
  void open(Tracer& tracer, std::string_view name, std::string_view cat,
            TraceContext parent);

  Tracer* tracer_ = nullptr;  ///< null = disabled at construction
  bool pushed_ctx_ = false;   ///< installed itself on the thread ctx stack
  Tracer::Clock::time_point start_{};
  SpanRecord rec_;
};

}  // namespace tbs::obs
