#include "obs/report.hpp"

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <thread>

#include "obs/json.hpp"

// Build facts are stamped in by CMake (src/obs/CMakeLists.txt); the
// fallbacks keep non-CMake builds (and IDE tooling) compiling.
#ifndef TBS_GIT_SHA
#define TBS_GIT_SHA "unknown"
#endif
#ifndef TBS_BUILD_TYPE
#define TBS_BUILD_TYPE "unknown"
#endif
#ifndef TBS_BUILD_FLAGS
#define TBS_BUILD_FLAGS ""
#endif
#ifndef TBS_COMPILER
#define TBS_COMPILER "unknown"
#endif

namespace tbs::obs {

RunMeta RunMeta::collect() {
  RunMeta m;
  m.git_sha = TBS_GIT_SHA;
  m.build_type = TBS_BUILD_TYPE;
  m.build_flags = TBS_BUILD_FLAGS;
  m.compiler = TBS_COMPILER;

  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm utc{};
  gmtime_r(&now, &utc);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
  m.timestamp = stamp;

  char host[256] = "unknown";
  if (gethostname(host, sizeof(host) - 1) != 0) host[0] = '\0';
  m.host = host[0] != '\0' ? host : "unknown";
  m.hw_threads = static_cast<int>(std::thread::hardware_concurrency());
  if (const char* be = std::getenv("TBS_BACKEND"); be != nullptr && *be != '\0')
    m.backend = be;
  return m;
}

std::string RunMeta::to_json() const {
  std::string out = "{";
  out += "\"git_sha\": \"" + json::escape(git_sha) + "\"";
  out += ", \"build_type\": \"" + json::escape(build_type) + "\"";
  out += ", \"build_flags\": \"" + json::escape(build_flags) + "\"";
  out += ", \"compiler\": \"" + json::escape(compiler) + "\"";
  out += ", \"timestamp\": \"" + json::escape(timestamp) + "\"";
  out += ", \"host\": \"" + json::escape(host) + "\"";
  out += ", \"hw_threads\": " + std::to_string(hw_threads);
  out += ", \"backend\": \"" + json::escape(backend) + "\"";
  out += "}";
  return out;
}

Metric::Metric(std::string n, double v, Better b, bool g)
    : name(std::move(n)), better(b), gate(g) {
  if (std::isfinite(v)) {
    value = v;
  } else {
    value = 0.0;
    invalid = true;
  }
}

Metric& BenchEntry::metric(std::string name, double value, Better better,
                          bool gate) {
  metrics.emplace_back(std::move(name), value, better, gate);
  return metrics.back();
}

BenchReport::BenchReport(std::string bench_name)
    : name_(std::move(bench_name)), meta_(RunMeta::collect()) {}

BenchEntry& BenchReport::entry(std::string kernel, double n,
                               std::string source) {
  BenchEntry e;
  e.kernel = std::move(kernel);
  e.n = n;
  e.source = std::move(source);
  entries_.push_back(std::move(e));
  return entries_.back();
}

namespace {

std::string metric_json(const Metric& m) {
  std::string out = "{\"name\": \"" + json::escape(m.name) +
                    "\", \"value\": " + json::number(m.value) +
                    ", \"better\": \"" +
                    (m.better == Better::Lower ? "lower" : "higher") +
                    "\", \"gate\": " + (m.gate ? "true" : "false");
  if (m.invalid) out += ", \"invalid\": true";
  out += "}";
  return out;
}

std::string time_report_json(const perfmodel::TimeReport& r) {
  std::string out = "{\"seconds\": " + json::number(r.seconds) +
                    ", \"bottleneck\": \"" + json::escape(r.bottleneck) + "\"";
  out += ", \"util\": {\"arith\": " + json::number(r.util_arith()) +
         ", \"control\": " + json::number(r.util_control()) +
         ", \"dram\": " + json::number(r.util_dram()) +
         ", \"l2\": " + json::number(r.util_l2()) +
         ", \"roc\": " + json::number(r.util_roc()) +
         ", \"shared\": " + json::number(r.util_shared()) + "}";
  out += ", \"bw\": {\"dram\": " + json::number(r.bw_dram) +
         ", \"l2\": " + json::number(r.bw_l2) +
         ", \"roc\": " + json::number(r.bw_roc) +
         ", \"shared\": " + json::number(r.bw_shared) + "}";
  out += ", \"occupancy\": " + json::number(r.occ.occupancy) + "}";
  return out;
}

std::string stats_json(const vgpu::KernelStats& s) {
  const auto u64 = [](std::uint64_t v) { return std::to_string(v); };
  std::string out = "{";
  out += "\"global_loads\": " + u64(s.global_loads);
  out += ", \"global_stores\": " + u64(s.global_stores);
  out += ", \"global_atomics\": " + u64(s.global_atomics);
  out += ", \"roc_loads\": " + u64(s.roc_loads);
  out += ", \"shared_loads\": " + u64(s.shared_loads);
  out += ", \"shared_stores\": " + u64(s.shared_stores);
  out += ", \"shared_atomics\": " + u64(s.shared_atomics);
  out += ", \"shuffles\": " + u64(s.shuffles);
  out += ", \"barriers\": " + u64(s.barriers);
  out += ", \"dram_bytes\": " + u64(s.dram_bytes);
  out += ", \"l2_bytes\": " + u64(s.l2_bytes);
  out += ", \"roc_hit_bytes\": " + u64(s.roc_hit_bytes);
  out += ", \"shared_bytes\": " + u64(s.shared_bytes);
  out += ", \"total_warp_cycles\": " + json::number(s.total_warp_cycles);
  out += ", \"grid_dim\": " + std::to_string(s.grid_dim);
  out += ", \"block_dim\": " + std::to_string(s.block_dim);
  out += ", \"launches\": " + u64(s.launches);
  out += "}";
  return out;
}

}  // namespace

std::string BenchReport::to_json() const {
  std::string out = "{\n";
  out += "  \"schema\": \"" + std::string(kBenchReportSchema) + "\",\n";
  out += "  \"bench\": \"" + json::escape(name_) + "\",\n";
  out += "  \"meta\": " + meta_.to_json() + ",\n";
  out += "  \"entries\": [";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const BenchEntry& e = entries_[i];
    out += (i == 0 ? "\n" : ",\n");
    out += "    {\"kernel\": \"" + json::escape(e.kernel) +
           "\", \"n\": " + json::number(e.n) + ", \"source\": \"" +
           json::escape(e.source) + "\",\n     \"metrics\": [";
    for (std::size_t m = 0; m < e.metrics.size(); ++m) {
      if (m != 0) out += ", ";
      out += metric_json(e.metrics[m]);
    }
    out += "]";
    if (e.has_report) out += ",\n     \"report\": " + time_report_json(e.report);
    if (e.has_stats) out += ",\n     \"counters\": " + stats_json(e.stats);
    out += "}";
  }
  out += entries_.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

bool BenchReport::write_json(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << to_json();
  return static_cast<bool>(os);
}

std::string artifact_dir(int argc, char** argv) {
  std::string dir = arg_value(argc, argv, "--out", "");
  if (dir.empty()) {
    const char* env = std::getenv("TBS_ARTIFACT_DIR");
    if (env != nullptr && env[0] != '\0') dir = env;
  }
  if (dir.empty()) return ".";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort; write errors
  return dir;                                    // surface at open time
}

std::string artifact_path(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir == ".") return name;
  return dir.back() == '/' ? dir + name : dir + "/" + name;
}

std::string arg_value(int argc, char** argv, const std::string& flag,
                      const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (argv[i] == flag) return argv[i + 1];
  return fallback;
}

}  // namespace tbs::obs
