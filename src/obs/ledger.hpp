// Performance ledger — the run-over-run store behind the regression gate.
//
// Every bench emits a BenchReport (report.hpp); this file turns those
// artifacts into a time series and a gate:
//
//   BENCH_*.json ──▶ ledger::from_bench_report() ──▶ Run (flat metric map)
//   Run ──▶ append() ──▶ ledger.jsonl            (one JSON object per line)
//   Run × Baseline ──▶ compare() ──▶ RegressionReport (ranked deltas)
//
// Metric names are flattened to `<bench>/<kernel>/n=<n>/<metric>` so a
// baseline covers every bench with one flat map. The comparison is
// direction-aware: a gated lower-is-better metric (modeled seconds) fails
// when it rises by more than the tolerance, a higher-is-better one (qps)
// fails when it falls — improvements never fail and can be folded back
// into the baseline ("blessed") via update_baseline(). Per-metric
// tolerance overrides in the baseline let noisy metrics carry a wider band
// than the default without loosening the gate for everything else.
//
// bench/check_regression is the CLI over this library; ROADMAP's "as fast
// as the hardware allows" is enforced by CI running it against the
// committed baseline in bench/baselines/.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/report.hpp"

namespace tbs::obs::ledger {

inline constexpr const char* kLedgerSchema = "tbs.perf_ledger.v1";
inline constexpr const char* kBaselineSchema = "tbs.perf_baseline.v1";
inline constexpr double kDefaultTolerance = 0.05;

/// One metric's value + gate semantics, as stored in ledger lines and
/// baselines.
struct MetricSample {
  double value = 0.0;
  Better better = Better::Lower;
  bool gate = true;
  bool invalid = false;
  /// Per-metric relative tolerance override; 0 means "use the default".
  double tolerance = 0.0;
};

/// Flat metric map: flattened name -> sample (sorted, so serialization is
/// deterministic).
using MetricMap = std::map<std::string, MetricSample>;

/// One bench run: provenance + its flattened metrics.
struct Run {
  std::string bench;
  RunMeta meta;
  MetricMap metrics;
};

/// Flattened metric name: `<bench>/<kernel>/n=<n>/<metric>`.
std::string metric_key(const std::string& bench, const std::string& kernel,
                       double n, const std::string& metric);

/// Extract a Run from a parsed BENCH_<name>.json document. Throws
/// CheckError when the document is not a schema-valid bench report
/// (missing schema/bench/meta/entries, malformed metrics) — this doubles
/// as the structural validator for bench artifacts.
Run from_bench_report(const json::Value& doc);

/// One ledger line (no trailing newline).
std::string to_jsonl_line(const Run& run);

/// Parse one ledger line back into a Run (throws CheckError on schema
/// violations).
Run from_jsonl_line(const json::Value& doc);

/// Append `run` to the JSONL ledger at `path` (created if missing); false
/// if the file won't open.
bool append(const std::string& path, const Run& run);

/// Read every run in the ledger, oldest first. Missing file -> empty.
/// Throws CheckError on a malformed line.
std::vector<Run> read(const std::string& path);

/// The committed reference a run is gated against.
struct Baseline {
  double tolerance = kDefaultTolerance;  ///< default relative tolerance
  RunMeta meta;                          ///< provenance of the blessing run
  MetricMap metrics;

  [[nodiscard]] std::string to_json() const;
  bool save(const std::string& path) const;

  /// Parse a baseline document (throws CheckError when malformed).
  static Baseline parse(const json::Value& doc);
  /// Load from disk (throws CheckError on missing/malformed file).
  static Baseline load(const std::string& path);
};

/// One baseline-vs-current comparison.
struct Delta {
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  /// Signed relative change in the *bad* direction: positive means worse
  /// (slower / lower-qps), negative means better, whatever `better` says.
  double regression = 0.0;
  double tolerance = 0.0;  ///< the tolerance this metric was judged with
  Better better = Better::Lower;
  bool gated = true;
  bool regressed = false;  ///< gated && regression > tolerance
  bool improved = false;   ///< regression < -tolerance (any gate state)
};

/// The ranked comparison of one run (or several merged runs) against the
/// baseline.
struct RegressionReport {
  std::vector<Delta> deltas;         ///< worst regression first
  std::vector<std::string> missing;  ///< in baseline, absent from the run
  std::vector<std::string> added;    ///< in the run, absent from baseline

  [[nodiscard]] bool any_regression() const;
  [[nodiscard]] const Delta* worst() const;  ///< nullptr when empty
  [[nodiscard]] std::string to_json() const;
  bool write_json(const std::string& path) const;
};

/// Compare `current` metrics against the baseline. Gated baseline metrics
/// missing from `current` are reported in `missing` (a disappeared metric
/// is suspicious but not a perf regression). `invalid` samples on either
/// side are never regressions — a clamped 0 would otherwise read as an
/// infinite speedup or slowdown.
RegressionReport compare(const Baseline& baseline, const MetricMap& current);

/// Bless improvements: fold improved values and brand-new metrics from
/// `current` into `baseline`. Regressed/unchanged entries are left alone
/// (blessing a regression requires rebuilding the baseline from scratch).
/// Returns the number of entries updated or added.
std::size_t update_baseline(Baseline& baseline, const MetricMap& current,
                            const RegressionReport& report);

}  // namespace tbs::obs::ledger
