#include "obs/cost.hpp"

#include <algorithm>
#include <fstream>

#include "obs/json.hpp"

namespace tbs::obs {

namespace {

std::string hex16(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

std::string phases_json(const std::array<PhaseCost, kCostPhases>& phases) {
  std::string out = "{";
  for (std::size_t i = 0; i < kCostPhases; ++i) {
    if (i != 0) out += ", ";
    const PhaseCost& p = phases[i];
    out += "\"";
    out += to_string(static_cast<CostPhase>(i));
    out += "\": {\"seconds\": " + json::number(p.seconds) +
           ", \"device_cycles\": " + json::number(p.device_cycles) +
           ", \"bytes\": " + json::number(p.bytes) + "}";
  }
  out += "}";
  return out;
}

std::string aggregate_json(const CostLedger::Aggregate& a) {
  std::string out =
      "{\"queries\": " + std::to_string(a.queries) +
      ", \"total_seconds\": " + json::number(a.total_seconds) +
      ", \"phase_seconds\": {";
  for (std::size_t i = 0; i < kCostPhases; ++i) {
    if (i != 0) out += ", ";
    out += "\"";
    out += to_string(static_cast<CostPhase>(i));
    out += "\": " + json::number(a.phase_seconds[i]);
  }
  out += "}, \"device_cycles\": " + json::number(a.device_cycles) +
         ", \"bytes\": " + json::number(a.bytes) +
         ", \"waste_seconds\": " + json::number(a.waste_seconds) +
         ", \"waste_events\": " + std::to_string(a.waste_events) +
         ", \"cache_hits\": " + std::to_string(a.cache_hits) +
         ", \"failures\": " + std::to_string(a.failures) + "}";
  return out;
}

std::string rollup_json(const std::map<std::string, CostLedger::Aggregate>& m) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, agg] : m) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + json::escape(key) + "\": " + aggregate_json(agg);
  }
  out += "}";
  return out;
}

}  // namespace

std::string_view to_string(CostPhase p) {
  switch (p) {
    case CostPhase::Queue: return "queue";
    case CostPhase::Plan: return "plan";
    case CostPhase::Stage: return "stage";
    case CostPhase::Launch: return "launch";
    case CostPhase::Merge: return "merge";
    case CostPhase::CacheFill: return "cache_fill";
  }
  return "unknown";
}

double QueryCost::attributed_seconds() const {
  double sum = waste_seconds;
  for (const PhaseCost& p : phases) sum += p.seconds;
  return sum;
}

double QueryCost::tile_seconds() const {
  double sum = 0.0;
  for (const TileCost& t : tiles) sum += t.seconds;
  return sum;
}

std::string QueryCost::to_json() const {
  std::string out =
      "{\"trace_id\": \"" + hex16(trace_id) + "\", \"kind\": \"" +
      json::escape(kind) + "\", \"dataset_fp\": \"" + hex16(dataset_fp) +
      "\", \"backend\": \"" + json::escape(backend) + "\", \"variant\": \"" +
      json::escape(variant) +
      "\", \"total_seconds\": " + json::number(total_seconds) +
      ", \"attributed_seconds\": " + json::number(attributed_seconds()) +
      ", \"phases\": " + phases_json(phases) +
      ", \"waste_seconds\": " + json::number(waste_seconds) +
      ", \"waste_events\": " + std::to_string(waste_events) +
      ", \"cache_hit\": " + (cache_hit ? "true" : "false") +
      ", \"coalesced\": " + (coalesced ? "true" : "false") +
      ", \"degraded\": " + (degraded ? "true" : "false") +
      ", \"failover\": " + (failover ? "true" : "false") +
      ", \"sharded\": " + (sharded ? "true" : "false") +
      ", \"failed\": " + (failed ? "true" : "false") +
      ", \"retries\": " + std::to_string(retries) +
      ", \"lanes_lost\": " + std::to_string(lanes_lost) +
      ", \"tiles_failed_over\": " + std::to_string(tiles_failed_over) +
      ", \"estimate_seconds\": " + json::number(estimate_seconds) +
      ", \"raw_estimate_seconds\": " + json::number(raw_estimate_seconds) +
      ", \"measured_seconds\": " + json::number(measured_seconds);
  out += ", \"tiles\": [";
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    if (i != 0) out += ", ";
    const TileCost& t = tiles[i];
    out += "{\"a\": " + std::to_string(t.a) +
           ", \"b\": " + std::to_string(t.b) +
           ", \"lane\": " + std::to_string(t.lane) + ", \"backend\": \"" +
           json::escape(t.backend) +
           "\", \"seconds\": " + json::number(t.seconds) +
           ", \"stage_seconds\": " + json::number(t.stage_seconds) +
           ", \"staged_bytes\": " + json::number(t.staged_bytes) +
           ", \"device_cycles\": " + json::number(t.device_cycles) +
           ", \"failover\": " + (t.failover ? "true" : "false") + "}";
  }
  out += "]}";
  return out;
}

CostLedger::CostLedger(std::size_t keep_recent)
    : keep_recent_(std::max<std::size_t>(1, keep_recent)) {}

void CostLedger::fold(Aggregate& a, const QueryCost& qc) {
  ++a.queries;
  a.total_seconds += qc.total_seconds;
  for (std::size_t i = 0; i < kCostPhases; ++i) {
    a.phase_seconds[i] += qc.phases[i].seconds;
    a.device_cycles += qc.phases[i].device_cycles;
    a.bytes += qc.phases[i].bytes;
  }
  a.waste_seconds += qc.waste_seconds;
  a.waste_events += qc.waste_events;
  if (qc.cache_hit) ++a.cache_hits;
  if (qc.failed) ++a.failures;
}

void CostLedger::record(const QueryCost& qc) {
  const std::lock_guard<std::mutex> lock(mu_);
  fold(total_, qc);
  if (!qc.backend.empty()) fold(by_backend_[qc.backend], qc);
  if (!qc.variant.empty()) fold(by_variant_[qc.variant], qc);
  fold(by_dataset_[hex16(qc.dataset_fp)], qc);
  if (recent_.size() < keep_recent_) {
    recent_.push_back(qc);
  } else {
    recent_[recent_head_] = qc;
    recent_wrapped_ = true;
  }
  recent_head_ = (recent_head_ + 1) % keep_recent_;
}

CostLedger::Aggregate CostLedger::total() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::map<std::string, CostLedger::Aggregate> CostLedger::by_backend() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return by_backend_;
}

std::map<std::string, CostLedger::Aggregate> CostLedger::by_variant() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return by_variant_;
}

std::map<std::string, CostLedger::Aggregate> CostLedger::by_dataset() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return by_dataset_;
}

std::vector<QueryCost> CostLedger::recent() const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!recent_wrapped_) return recent_;
  std::vector<QueryCost> out;
  out.reserve(recent_.size());
  for (std::size_t i = 0; i < recent_.size(); ++i)
    out.push_back(recent_[(recent_head_ + i) % recent_.size()]);
  return out;
}

void CostLedger::export_metrics(MetricsRegistry& reg) const {
  Aggregate total;
  std::map<std::string, Aggregate> backends;
  std::map<std::string, Aggregate> variants;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    total = total_;
    backends = by_backend_;
    variants = by_variant_;
  }
  reg.gauge("serve.cost.queries").set(static_cast<double>(total.queries));
  reg.gauge("serve.cost.total_seconds").set(total.total_seconds);
  for (std::size_t i = 0; i < kCostPhases; ++i) {
    std::string name = "serve.cost.phase.";
    name += to_string(static_cast<CostPhase>(i));
    name += "_seconds";
    reg.gauge(name).set(total.phase_seconds[i]);
  }
  reg.gauge("serve.cost.waste_seconds").set(total.waste_seconds);
  reg.gauge("serve.cost.waste_events")
      .set(static_cast<double>(total.waste_events));
  reg.gauge("serve.cost.device_cycles").set(total.device_cycles);
  reg.gauge("serve.cost.bytes").set(total.bytes);
  reg.gauge("serve.cost.cache_hits")
      .set(static_cast<double>(total.cache_hits));
  for (const auto& [name, agg] : backends) {
    reg.gauge("serve.cost.backend." + name + ".seconds")
        .set(agg.total_seconds);
    reg.gauge("serve.cost.backend." + name + ".queries")
        .set(static_cast<double>(agg.queries));
  }
  for (const auto& [name, agg] : variants) {
    reg.gauge("serve.cost.variant." + name + ".seconds")
        .set(agg.total_seconds);
    reg.gauge("serve.cost.variant." + name + ".queries")
        .set(static_cast<double>(agg.queries));
  }
}

std::string CostLedger::json() const {
  Aggregate total;
  std::map<std::string, Aggregate> backends;
  std::map<std::string, Aggregate> variants;
  std::map<std::string, Aggregate> datasets;
  std::vector<QueryCost> recent = this->recent();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    total = total_;
    backends = by_backend_;
    variants = by_variant_;
    datasets = by_dataset_;
  }
  std::string out = "{\"schema\": \"tbs.cost_ledger.v1\", \"total\": " +
                    aggregate_json(total) +
                    ", \"by_backend\": " + rollup_json(backends) +
                    ", \"by_variant\": " + rollup_json(variants) +
                    ", \"by_dataset\": " + rollup_json(datasets) +
                    ", \"recent\": [";
  for (std::size_t i = 0; i < recent.size(); ++i) {
    if (i != 0) out += ", ";
    out += recent[i].to_json();
  }
  out += "]}";
  return out;
}

bool CostLedger::write_json(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << json();
  return static_cast<bool>(os);
}

}  // namespace tbs::obs
