#include "obs/ledger.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace tbs::obs::ledger {

namespace {

std::string sample_json(const MetricSample& s) {
  std::string out = "{\"value\": " + json::number(s.value) +
                    ", \"better\": \"" +
                    (s.better == Better::Lower ? "lower" : "higher") +
                    "\", \"gate\": " + (s.gate ? "true" : "false");
  if (s.invalid) out += ", \"invalid\": true";
  if (s.tolerance > 0.0)
    out += ", \"tolerance\": " + json::number(s.tolerance);
  out += "}";
  return out;
}

MetricSample parse_sample(const json::Value& v, const std::string& where) {
  check(v.is_object(), "ledger: metric sample at " + where +
                           " is not an object");
  MetricSample s;
  s.value = v.at("value").number;
  const std::string& better = v.at("better").string;
  check(better == "lower" || better == "higher",
        "ledger: bad 'better' value '" + better + "' at " + where);
  s.better = better == "lower" ? Better::Lower : Better::Higher;
  s.gate = v.at("gate").boolean;
  if (const json::Value* inv = v.find("invalid")) s.invalid = inv->boolean;
  if (const json::Value* tol = v.find("tolerance")) s.tolerance = tol->number;
  return s;
}

std::string metrics_json(const MetricMap& metrics) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, sample] : metrics) {
    out += first ? "" : ", ";
    first = false;
    out += "\"";
    out += json::escape(name);
    out += "\": ";
    out += sample_json(sample);
  }
  out += "}";
  return out;
}

MetricMap parse_metrics(const json::Value& v, const std::string& where) {
  check(v.is_object(), "ledger: 'metrics' at " + where + " is not an object");
  MetricMap out;
  for (const auto& [name, sample] : v.object)
    out.emplace(name, parse_sample(sample, where + "/" + name));
  return out;
}

RunMeta parse_meta(const json::Value& v) {
  check(v.is_object(), "ledger: 'meta' is not an object");
  RunMeta m;
  m.git_sha = v.at("git_sha").string;
  m.build_type = v.at("build_type").string;
  m.build_flags = v.at("build_flags").string;
  m.compiler = v.at("compiler").string;
  m.timestamp = v.at("timestamp").string;
  m.host = v.at("host").string;
  m.hw_threads = static_cast<int>(v.at("hw_threads").number);
  return m;
}

/// Format the size component of a flattened metric name ("n=400000";
/// json::number keeps integers plain).
std::string n_part(double n) { return "n=" + json::number(n); }

}  // namespace

std::string metric_key(const std::string& bench, const std::string& kernel,
                       double n, const std::string& metric) {
  return bench + "/" + kernel + "/" + n_part(n) + "/" + metric;
}

Run from_bench_report(const json::Value& doc) {
  check(doc.is_object(), "bench report: document is not an object");
  const std::string& schema = doc.at("schema").string;
  check(schema == kBenchReportSchema,
        "bench report: unknown schema '" + schema + "' (expected " +
            kBenchReportSchema + ")");
  Run run;
  run.bench = doc.at("bench").string;
  check(!run.bench.empty(), "bench report: empty bench name");
  run.meta = parse_meta(doc.at("meta"));

  const json::Value& entries = doc.at("entries");
  check(entries.is_array(), "bench report: 'entries' is not an array");
  for (const json::Value& e : entries.array) {
    check(e.is_object(), "bench report: entry is not an object");
    const std::string& kernel = e.at("kernel").string;
    const double n = e.at("n").number;
    const std::string& source = e.at("source").string;
    check(source == "sim" || source == "model" || source == "wall",
          "bench report: bad entry source '" + source + "'");
    const json::Value& metrics = e.at("metrics");
    check(metrics.is_array(), "bench report: entry 'metrics' is not an array");
    for (const json::Value& m : metrics.array) {
      check(m.is_object(), "bench report: metric is not an object");
      MetricSample s;
      s.value = m.at("value").number;
      const std::string& better = m.at("better").string;
      check(better == "lower" || better == "higher",
            "bench report: bad metric direction '" + better + "'");
      s.better = better == "lower" ? Better::Lower : Better::Higher;
      s.gate = m.at("gate").boolean;
      if (const json::Value* inv = m.find("invalid")) s.invalid = inv->boolean;
      run.metrics.emplace(
          metric_key(run.bench, kernel, n, m.at("name").string), s);
    }
  }
  return run;
}

std::string to_jsonl_line(const Run& run) {
  return "{\"schema\": \"" + std::string(kLedgerSchema) + "\", \"bench\": \"" +
         json::escape(run.bench) + "\", \"meta\": " + run.meta.to_json() +
         ", \"metrics\": " + metrics_json(run.metrics) + "}";
}

Run from_jsonl_line(const json::Value& doc) {
  check(doc.is_object(), "ledger: line is not an object");
  const std::string& schema = doc.at("schema").string;
  check(schema == kLedgerSchema,
        "ledger: unknown schema '" + schema + "'");
  Run run;
  run.bench = doc.at("bench").string;
  run.meta = parse_meta(doc.at("meta"));
  run.metrics = parse_metrics(doc.at("metrics"), run.bench);
  return run;
}

bool append(const std::string& path, const Run& run) {
  std::ofstream os(path, std::ios::app);
  if (!os) return false;
  os << to_jsonl_line(run) << "\n";
  return static_cast<bool>(os);
}

std::vector<Run> read(const std::string& path) {
  std::ifstream is(path);
  std::vector<Run> out;
  if (!is) return out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    out.push_back(from_jsonl_line(json::parse(line)));
  }
  return out;
}

std::string Baseline::to_json() const {
  std::string out = "{\n  \"schema\": \"" + std::string(kBaselineSchema) +
                    "\",\n  \"tolerance\": " + json::number(tolerance) +
                    ",\n  \"meta\": " + meta.to_json() +
                    ",\n  \"metrics\": {";
  bool first = true;
  for (const auto& [name, sample] : metrics) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json::escape(name) + "\": " + sample_json(sample);
  }
  out += metrics.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

bool Baseline::save(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << to_json();
  return static_cast<bool>(os);
}

Baseline Baseline::parse(const json::Value& doc) {
  check(doc.is_object(), "baseline: document is not an object");
  const std::string& schema = doc.at("schema").string;
  check(schema == kBaselineSchema,
        "baseline: unknown schema '" + schema + "'");
  Baseline b;
  b.tolerance = doc.at("tolerance").number;
  check(b.tolerance > 0.0, "baseline: tolerance must be positive");
  b.meta = parse_meta(doc.at("meta"));
  b.metrics = parse_metrics(doc.at("metrics"), "baseline");
  return b;
}

Baseline Baseline::load(const std::string& path) {
  std::ifstream is(path);
  check(static_cast<bool>(is), "baseline: cannot open '" + path + "'");
  std::stringstream ss;
  ss << is.rdbuf();
  return parse(json::parse(ss.str()));
}

bool RegressionReport::any_regression() const {
  return std::any_of(deltas.begin(), deltas.end(),
                     [](const Delta& d) { return d.regressed; });
}

const Delta* RegressionReport::worst() const {
  return deltas.empty() ? nullptr : &deltas.front();
}

std::string RegressionReport::to_json() const {
  std::string out = "{\n  \"any_regression\": ";
  out += any_regression() ? "true" : "false";
  out += ",\n  \"deltas\": [";
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    const Delta& d = deltas[i];
    out += (i == 0 ? "\n" : ",\n");
    out += "    {\"name\": \"" + json::escape(d.name) +
           "\", \"baseline\": " + json::number(d.baseline) +
           ", \"current\": " + json::number(d.current) +
           ", \"regression\": " + json::number(d.regression) +
           ", \"tolerance\": " + json::number(d.tolerance) +
           ", \"better\": \"" +
           (d.better == Better::Lower ? "lower" : "higher") +
           "\", \"gated\": " + (d.gated ? "true" : "false") +
           ", \"regressed\": " + (d.regressed ? "true" : "false") +
           ", \"improved\": " + (d.improved ? "true" : "false") + "}";
  }
  out += deltas.empty() ? "],\n" : "\n  ],\n";
  const auto names = [](const std::vector<std::string>& v) {
    std::string s = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i != 0) s += ", ";
      s += "\"";
      s += json::escape(v[i]);
      s += "\"";
    }
    s += "]";
    return s;
  };
  out += "  \"missing\": " + names(missing) + ",\n";
  out += "  \"added\": " + names(added) + "\n}\n";
  return out;
}

bool RegressionReport::write_json(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << to_json();
  return static_cast<bool>(os);
}

RegressionReport compare(const Baseline& baseline, const MetricMap& current) {
  RegressionReport report;
  for (const auto& [name, base] : baseline.metrics) {
    const auto it = current.find(name);
    if (it == current.end()) {
      if (base.gate) report.missing.push_back(name);
      continue;
    }
    const MetricSample& cur = it->second;
    Delta d;
    d.name = name;
    d.baseline = base.value;
    d.current = cur.value;
    d.better = base.better;
    d.gated = base.gate;
    d.tolerance =
        base.tolerance > 0.0 ? base.tolerance : baseline.tolerance;
    // Relative change in the bad direction, against the baseline magnitude.
    // A zero baseline can't scale a relative delta; any nonzero current
    // value in the bad direction counts as a full (1.0) regression.
    const double denom = std::fabs(base.value);
    const double worse = base.better == Better::Lower
                             ? cur.value - base.value
                             : base.value - cur.value;
    d.regression = denom > 0.0 ? worse / denom : (worse > 0.0 ? 1.0 : 0.0);
    if (!base.invalid && !cur.invalid) {
      d.regressed = d.gated && d.regression > d.tolerance;
      d.improved = d.regression < -d.tolerance;
    }
    report.deltas.push_back(std::move(d));
  }
  for (const auto& [name, cur] : current)
    if (baseline.metrics.find(name) == baseline.metrics.end())
      report.added.push_back(name);
  std::sort(report.deltas.begin(), report.deltas.end(),
            [](const Delta& a, const Delta& b) {
              if (a.regressed != b.regressed) return a.regressed;
              return a.regression > b.regression;
            });
  return report;
}

std::size_t update_baseline(Baseline& baseline, const MetricMap& current,
                            const RegressionReport& report) {
  std::size_t changed = 0;
  for (const Delta& d : report.deltas) {
    if (!d.improved) continue;
    MetricSample& slot = baseline.metrics[d.name];
    slot.value = d.current;
    slot.invalid = false;
    ++changed;
  }
  for (const std::string& name : report.added) {
    const auto it = current.find(name);
    if (it == current.end()) continue;
    baseline.metrics[name] = it->second;
    ++changed;
  }
  return changed;
}

}  // namespace tbs::obs::ledger
