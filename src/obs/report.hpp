// BenchReport — the unified, schema-versioned bench emission protocol.
//
// The paper's core claims are quantitative (which kernel wins, by what
// factor, at what modeled bandwidth); the benches reproduce them but until
// now printed human-only ASCII tables. BenchReport gives every bench one
// machine-readable artifact: `BENCH_<name>.json` carrying run metadata
// (git sha, build flags, timestamp, host), plus one entry per kernel/size
// with the modeled seconds, utilization/bandwidth breakdown, raw
// KernelStats counters, and sim-vs-model provenance. `obs::ledger` appends
// these runs to a JSONL time series and `bench/check_regression` gates new
// runs against a committed baseline — see ledger.hpp.
//
// Metric semantics: every metric carries a direction (lower- or
// higher-is-better) and a `gate` flag. Gated metrics are deterministic
// simulator/model outputs (modeled seconds, bandwidths, counter ratios)
// that the regression gate fails on; wall-clock metrics (qps, p99 on a
// shared host) are recorded with gate=false so they ride the ledger and
// the delta report without flaking CI.
//
// Non-finite hardening: a zero-duration run divides into an Inf qps and an
// empty histogram means into NaN. Those values serialize as 0 with an
// explicit `"invalid": true` flag rather than as JSON-illegal tokens (or a
// silently lying 0), so downstream consumers can both parse the document
// and see that the number is not real.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "perfmodel/timemodel.hpp"
#include "vgpu/stats.hpp"

namespace tbs::obs {

/// Schema identifier stamped into every report (bump on layout changes).
inline constexpr const char* kBenchReportSchema = "tbs.bench_report.v1";

/// Metadata identifying one build+host+moment — the provenance block every
/// bench report and ledger line carries.
struct RunMeta {
  std::string git_sha;      ///< configure-time `git rev-parse` (or "unknown")
  std::string build_type;   ///< CMAKE_BUILD_TYPE
  std::string build_flags;  ///< CMAKE_CXX_FLAGS as configured
  std::string compiler;     ///< id + version
  std::string timestamp;    ///< UTC ISO-8601, collected at runtime
  std::string host;         ///< gethostname()
  int hw_threads = 0;       ///< std::thread::hardware_concurrency()
  /// Execution substrate the run targeted: "vgpu", "cpu", or "auto"
  /// (planner-placed). collect() seeds it from TBS_BACKEND when set.
  std::string backend = "vgpu";

  /// Compiled-in build facts + runtime host facts.
  static RunMeta collect();

  [[nodiscard]] std::string to_json() const;  ///< one JSON object
};

/// Regression-gate direction of one metric.
enum class Better { Lower, Higher };

/// One named scalar a bench reports. `gate` marks metrics the regression
/// gate enforces (deterministic model outputs); wall-clock measurements set
/// it false. `invalid` records that the raw value was non-finite and was
/// clamped to 0 for serialization.
struct Metric {
  std::string name;
  double value = 0.0;
  Better better = Better::Lower;
  bool gate = true;
  bool invalid = false;

  Metric() = default;
  Metric(std::string n, double v, Better b, bool g = true);
};

/// One kernel × size data point.
struct BenchEntry {
  std::string kernel;  ///< kernel/config label ("Reg-ROC-Out", "clients=8")
  double n = 0.0;      ///< problem size (or the bench's x-axis value)
  std::string source;  ///< "sim" (direct), "model" (extrapolated), "wall"
  std::vector<Metric> metrics;

  bool has_report = false;
  perfmodel::TimeReport report;  ///< util/bw breakdown when available

  bool has_stats = false;
  vgpu::KernelStats stats;  ///< raw access counters when available

  /// Append a metric (non-finite values are clamped + flagged).
  Metric& metric(std::string name, double value, Better better,
                 bool gate = true);
};

/// The per-bench artifact builder. Typical use (see bench/harness.hpp for
/// the Sweep-level convenience wrappers):
///
///   obs::BenchReport report("fig4_sdh");
///   auto& e = report.entry("Reg-ROC-Out", 2e6, "model");
///   e.metric("seconds", t, obs::Better::Lower);
///   e.report = time_report; e.has_report = true;
///   report.write_json(dir + "/BENCH_fig4_sdh.json");
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const RunMeta& meta() const { return meta_; }
  /// Mutable metadata access — benches stamp the substrate they actually
  /// ran on (e.g. from --backend) before writing the report.
  [[nodiscard]] RunMeta& meta() { return meta_; }
  [[nodiscard]] const std::vector<BenchEntry>& entries() const {
    return entries_;
  }

  /// Add one kernel × size entry.
  BenchEntry& entry(std::string kernel, double n, std::string source);

  /// The full document (parseable by obs::json; see EXPERIMENTS.md for the
  /// schema walk-through).
  [[nodiscard]] std::string to_json() const;

  /// Write to_json() to `path`; false if the file won't open.
  bool write_json(const std::string& path) const;

 private:
  std::string name_;
  RunMeta meta_;
  std::vector<BenchEntry> entries_;
};

/// Resolve where artifacts go: `--out <dir>` in argv, else the
/// TBS_ARTIFACT_DIR environment variable, else ".". The directory is
/// created if missing. Every artifact-writing bench/example funnels its
/// output paths through this, so CI redirects a whole run with one flag.
std::string artifact_dir(int argc, char** argv);

/// `dir + "/" + name` (no-op prefix when dir is ".").
std::string artifact_path(const std::string& dir, const std::string& name);

/// Tiny argv helper: the value following `flag`, or `fallback` when the
/// flag is absent (or has no following value).
std::string arg_value(int argc, char** argv, const std::string& flag,
                      const std::string& fallback);

}  // namespace tbs::obs
