#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace tbs::obs::json {

const Value* Value::find(std::string_view key) const {
  if (type != Type::Object) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  check(v != nullptr, "json: missing object key '" + std::string(key) + "'");
  return *v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    check(pos_ == text_.size(), "json: trailing garbage at offset " +
                                    std::to_string(pos_));
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    check(pos_ < text_.size(), "json: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    check(peek() == c, std::string("json: expected '") + c + "' at offset " +
                           std::to_string(pos_));
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::String;
        v.string = parse_string();
        return v;
      }
      case 't': {
        check(consume_literal("true"), "json: bad literal");
        Value v;
        v.type = Value::Type::Bool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        check(consume_literal("false"), "json: bad literal");
        Value v;
        v.type = Value::Type::Bool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        check(consume_literal("null"), "json: bad literal");
        return Value{};
      }
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      check(pos_ < text_.size(), "json: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      check(pos_ < text_.size(), "json: unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          check(pos_ + 4 <= text_.size(), "json: truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("json: bad \\u escape digit");
          }
          // The exporters only emit \u00XX for control characters; decode
          // the basic-multilingual-plane code point as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail(std::string("json: bad escape '\\") + e + "'");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    check(pos_ > start, "json: expected a value at offset " +
                            std::to_string(start));
    Value v;
    v.type = Value::Type::Number;
    const auto res = std::from_chars(text_.data() + start, text_.data() + pos_,
                                     v.number);
    check(res.ec == std::errc() && res.ptr == text_.data() + pos_,
          "json: malformed number at offset " + std::to_string(start));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string finite_number(double v, bool* clamped) {
  if (std::isfinite(v)) return number(v);
  if (clamped != nullptr) *clamped = true;
  return "0";
}

std::string number(double v) {
  if (v == 0.0) return "0";
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  // %.17g round-trips any double; trim to plain form for integers, which is
  // what counters almost always are.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace tbs::obs::json
