// Cost attribution — where did each query's time, bytes, and simulated
// cycles actually go?
//
// The metrics registry answers "how many / how fast" in aggregate and the
// tracer answers "what happened inside this one query", but neither gives
// an *accounting*: a decomposition of a query's wall time into phases that
// sums back to the total, with waste (failed attempts, backoff sleeps,
// failover re-execution) itemized instead of silently folded into latency.
// That accounting is what placement decisions (ROADMAP items 1/2/5) need —
// CADISHI-style measured-cost dispatch starts from exactly this ledger.
//
// Model: the serve engine fills one QueryCost per query as it moves through
// the pipeline (queue → plan → stage → launch → merge → cache-fill). For
// sharded queries the launch phase carries per-tile rows (shard pair, lane,
// seconds, staged bytes, device cycles, failover flag) and the phase's
// seconds are the *sum of tile resource-seconds* — tiles run in parallel,
// so resource-seconds, not wall, is the quantity that must balance: the
// acceptance check is Σ tiles == phases[launch] within 1%. Waste is wall
// time spent on attempts that produced no result (retries, backoff,
// failovers, degraded re-runs) and is accounted separately from the
// productive phases.
//
// The CostLedger aggregates recorded queries per backend, per variant, and
// per dataset, keeps a bounded ring of recent per-query ledgers, exports
// `serve.cost.*` gauges into a MetricsRegistry (picked up by the
// TelemetryBus feed + Prometheus exposition), and serializes everything as
// one JSON document for artifacts and `serve_demo --cost`.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace tbs::obs {

/// Pipeline phases a query's productive time is attributed to.
enum class CostPhase : int {
  Queue = 0,     ///< submit → worker pickup
  Plan = 1,      ///< core::plan() (calibration or cache hit)
  Stage = 2,     ///< operand staging / routing onto lanes
  Launch = 3,    ///< kernel execution (sharded: Σ tile resource-seconds)
  Merge = 4,     ///< partial-result reduction
  CacheFill = 5  ///< result-cache store
};
inline constexpr std::size_t kCostPhases = 6;

[[nodiscard]] std::string_view to_string(CostPhase p);

/// Cost of one phase. `seconds` is wall time for host phases and modeled
/// device seconds for launch on the simulated device; cycles/bytes are 0
/// where the phase has no device-side footprint.
struct PhaseCost {
  double seconds = 0.0;
  double device_cycles = 0.0;  ///< simulated warp cycles
  double bytes = 0.0;          ///< bytes staged / transferred
};

/// One tile of a sharded query's launch phase.
struct TileCost {
  int a = 0;  ///< shard pair; a == b for diagonal tiles
  int b = 0;
  std::size_t lane = 0;
  std::string backend;  ///< lane (backend) capability name
  double seconds = 0.0;
  double stage_seconds = 0.0;
  double staged_bytes = 0.0;
  double device_cycles = 0.0;
  bool failover = false;  ///< re-placed off a lost lane
};

/// The complete cost ledger of one query.
struct QueryCost {
  std::uint64_t trace_id = 0;
  std::string kind;  ///< problem kind ("sdh", "pcf", ...)
  std::uint64_t dataset_fp = 0;
  std::string backend;  ///< winning backend (empty on cache hit)
  std::string variant;  ///< winning variant key "<name>/B<block>"
  double total_seconds = 0.0;  ///< submit → completion wall time

  std::array<PhaseCost, kCostPhases> phases{};
  [[nodiscard]] PhaseCost& phase(CostPhase p) {
    return phases[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const PhaseCost& phase(CostPhase p) const {
    return phases[static_cast<std::size_t>(p)];
  }

  /// Wall time burned on attempts that produced no result: failed
  /// launches, backoff sleeps, the pre-failover portion of re-placed work.
  double waste_seconds = 0.0;
  std::uint64_t waste_events = 0;

  bool cache_hit = false;
  bool coalesced = false;
  bool degraded = false;
  bool failover = false;
  bool sharded = false;
  bool failed = false;
  std::uint64_t retries = 0;
  std::uint64_t lanes_lost = 0;
  std::uint64_t tiles_failed_over = 0;

  std::vector<TileCost> tiles;  ///< sharded queries only

  /// Planner's corrected estimate for the winner, its raw estimate, and
  /// the measured seconds on the estimate's own clock (modeled device
  /// seconds for vgpu, wall for cpu) — the feedback loop's triple.
  double estimate_seconds = 0.0;
  double raw_estimate_seconds = 0.0;
  double measured_seconds = 0.0;

  /// Σ phase seconds + waste — what the ledger accounts for. Close to
  /// total_seconds for unsharded queries; for sharded queries the launch
  /// phase is resource-seconds, so this can legitimately exceed wall.
  [[nodiscard]] double attributed_seconds() const;

  /// Σ tile seconds — must equal phase(Launch).seconds within tolerance
  /// for sharded queries (the balance check).
  [[nodiscard]] double tile_seconds() const;

  [[nodiscard]] std::string to_json() const;
};

/// Thread-safe aggregation of QueryCost records with per-backend /
/// per-variant / per-dataset rollups, a bounded ring of recent per-query
/// ledgers, `serve.cost.*` gauge export, and JSON serialization
/// (schema `tbs.cost_ledger.v1`).
class CostLedger {
 public:
  /// Rollup over a set of queries.
  struct Aggregate {
    std::uint64_t queries = 0;
    double total_seconds = 0.0;
    std::array<double, kCostPhases> phase_seconds{};
    double device_cycles = 0.0;
    double bytes = 0.0;
    double waste_seconds = 0.0;
    std::uint64_t waste_events = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t failures = 0;
  };

  explicit CostLedger(std::size_t keep_recent = 256);

  void record(const QueryCost& qc);

  [[nodiscard]] Aggregate total() const;
  [[nodiscard]] std::map<std::string, Aggregate> by_backend() const;
  [[nodiscard]] std::map<std::string, Aggregate> by_variant() const;
  /// Keyed by 16-hex-digit dataset fingerprint.
  [[nodiscard]] std::map<std::string, Aggregate> by_dataset() const;

  /// The most recent `keep_recent` per-query ledgers, oldest first.
  [[nodiscard]] std::vector<QueryCost> recent() const;

  /// Export the rollups as `serve.cost.*` gauges (totals, per-phase
  /// seconds, per-backend and per-variant seconds/queries). The dataset
  /// rollup is deliberately json-only — fingerprints are unbounded and
  /// would blow up metric cardinality.
  void export_metrics(MetricsRegistry& reg) const;

  /// {"schema": "tbs.cost_ledger.v1", "total": ..., "by_backend": ...,
  ///  "by_variant": ..., "by_dataset": ..., "recent": [...]}
  [[nodiscard]] std::string json() const;

  /// json() to `path`; false if the file won't open.
  bool write_json(const std::string& path) const;

 private:
  static void fold(Aggregate& a, const QueryCost& qc);

  std::size_t keep_recent_;
  mutable std::mutex mu_;
  Aggregate total_;
  std::map<std::string, Aggregate> by_backend_;
  std::map<std::string, Aggregate> by_variant_;
  std::map<std::string, Aggregate> by_dataset_;
  std::vector<QueryCost> recent_;  ///< ring, recent_head_ = next slot
  std::size_t recent_head_ = 0;
  bool recent_wrapped_ = false;
};

}  // namespace tbs::obs
