// Metrics — a registry of named counters, gauges, and fixed-bucket
// histograms with JSON snapshot export.
//
// This is the single sink every layer publishes into: the serve engine's
// admission/coalescing/cache counters and latency histogram, the planner's
// calibration counters, and the device pool's launch counter all live in
// one registry, so an ops snapshot is one `json_snapshot()` call instead of
// a walk over per-module structs. Instruments are created on first use and
// live as long as the registry; the references `counter()` / `gauge()` /
// `histogram()` return are stable, so hot paths resolve their instrument
// once and then pay one relaxed atomic per event.
//
// Naming convention: dotted paths, lowercase — `serve.submitted`,
// `core.plan.calibrations`, `vgpu.launches` (see DESIGN.md "Observability"
// for the full catalogue).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tbs::obs {

/// Monotonic event counter (relaxed atomic; aggregate reads are snapshots).
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (queue depth, occupancy, ...).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: cumulative-style buckets defined by upper
/// bounds, plus exact streaming count/sum/min/max. The bucket layout is
/// fixed at creation (no rebinning), so concurrent observes are one mutex
/// acquisition — cheap relative to the work being measured.
///
/// Exemplars: each bucket remembers the trace id of the last observation
/// that landed in it (when the caller supplies one), linking a metric
/// bucket back to a concrete trace — "which query was that 250ms one?"
/// is one lookup, the OpenMetrics exemplar idea.
class FixedHistogram {
 public:
  /// The last traced observation in one bucket; trace_id 0 = none yet.
  struct Exemplar {
    std::uint64_t trace_id = 0;
    double value = 0.0;
  };

  /// `upper_bounds` must be strictly increasing; a final +inf bucket is
  /// implicit (snapshot counts have bounds.size() + 1 entries).
  explicit FixedHistogram(std::vector<double> upper_bounds);

  /// Record `v`; a nonzero `exemplar_trace_id` also stamps the bucket's
  /// exemplar.
  void observe(double v, std::uint64_t exemplar_trace_id = 0);

  struct Snapshot {
    std::vector<double> bounds;         ///< finite upper bounds
    std::vector<std::uint64_t> counts;  ///< per bucket; last = overflow
    std::vector<Exemplar> exemplars;    ///< per bucket, parallel to counts
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when empty
    double max = 0.0;
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<std::uint64_t> counts_;
  std::vector<Exemplar> exemplars_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Bucket bounds for query-latency histograms, in seconds (100µs .. 2.5s,
/// roughly log-spaced).
std::vector<double> default_latency_bounds();

/// Named instrument registry. Thread-safe; instruments are created on
/// first use and never removed, so returned references remain valid for
/// the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);

  /// First call creates the histogram with `upper_bounds`; later calls
  /// return the existing instrument (bounds argument ignored).
  FixedHistogram& histogram(const std::string& name,
                            std::vector<double> upper_bounds);

  [[nodiscard]] std::vector<std::string> counter_names() const;

  /// One consistent copy of every instrument's current value, names
  /// sorted — the structured sibling of json_snapshot(), for exporters
  /// that need values (the Prometheus text exposition) not a document.
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, FixedHistogram::Snapshot>> histograms;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// One JSON document with every instrument, names sorted:
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  /// Histogram buckets holding an exemplar carry its trace id:
  /// {"le": ..., "count": ..., "exemplar_trace_id": "..."}.
  [[nodiscard]] std::string json_snapshot() const;

  /// Write json_snapshot() to `path`; false if the file won't open.
  bool write_json(const std::string& path) const;

  /// Process-wide registry for instruments that are not owned by a single
  /// component instance (planner counters, bench gauges).
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<FixedHistogram>> histograms_;
};

}  // namespace tbs::obs
