// Minimal JSON support for the observability layer.
//
// The exporters (Chrome trace, metrics snapshot, drift report) emit JSON by
// hand; `escape()` is the one primitive they share. The parser exists so
// tests — and the CI drift gate — can structurally validate those artifacts
// (does trace.json parse? do spans nest? is every counter present?) without
// an external dependency. It is a strict recursive-descent parser over the
// JSON grammar, not a general-purpose library: numbers become double,
// objects preserve insertion order, errors throw CheckError.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tbs::obs::json {

/// One parsed JSON value (a tagged tree).
class Value {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  ///< insertion order

  [[nodiscard]] bool is_null() const { return type == Type::Null; }
  [[nodiscard]] bool is_bool() const { return type == Type::Bool; }
  [[nodiscard]] bool is_number() const { return type == Type::Number; }
  [[nodiscard]] bool is_string() const { return type == Type::String; }
  [[nodiscard]] bool is_array() const { return type == Type::Array; }
  [[nodiscard]] bool is_object() const { return type == Type::Object; }

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Object member lookup; throws CheckError when absent.
  [[nodiscard]] const Value& at(std::string_view key) const;
};

/// Parse a complete JSON document (throws CheckError on malformed input or
/// trailing garbage).
Value parse(std::string_view text);

/// Escape a string for embedding between double quotes in a JSON document.
std::string escape(std::string_view s);

/// Format a double the way the exporters do: plain notation, no locale,
/// "0" for zero, enough digits to round-trip counters exactly.
std::string number(double v);

/// Like number(), but clamps non-finite values (NaN/Inf qps on a
/// zero-duration run, an empty histogram's mean) to "0" and reports the
/// clamp through `*clamped` so the emitter can attach an explicit
/// `"invalid": true` flag. Finite values leave `*clamped` untouched.
std::string finite_number(double v, bool* clamped = nullptr);

}  // namespace tbs::obs::json
