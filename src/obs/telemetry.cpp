#include "obs/telemetry.hpp"

#include <chrono>
#include <cmath>
#include <fstream>

#include "common/error.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace tbs::obs {
namespace {

/// Prometheus accepts non-finite sample values spelled +Inf/-Inf/NaN.
std::string prom_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return json::number(v);
}

void append_exemplar(std::string& out, const FixedHistogram::Exemplar& ex) {
  if (ex.trace_id == 0) return;
  out += " # {trace_id=\"" +
         prometheus_label_value(trace_id_hex(ex.trace_id)) + "\"} " +
         prom_value(ex.value);
}

}  // namespace

std::string prometheus_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prometheus_name(std::string_view name) {
  std::string out = "tbs_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheus_text(const MetricsRegistry& registry) {
  const MetricsRegistry::Snapshot snap = registry.snapshot();
  std::string out;

  for (const auto& [name, value] : snap.counters) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }

  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + prom_value(value) + "\n";
  }

  for (const auto& [name, h] : snap.histograms) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      const std::string le =
          b < h.bounds.size() ? json::number(h.bounds[b]) : "+Inf";
      out += prom + "_bucket{le=\"" + prometheus_label_value(le) + "\"} " +
             std::to_string(cumulative);
      if (b < h.exemplars.size()) append_exemplar(out, h.exemplars[b]);
      out += "\n";
    }
    out += prom + "_sum " + prom_value(h.sum) + "\n";
    out += prom + "_count " + std::to_string(h.count) + "\n";
  }

  return out;
}

TelemetryBus::TelemetryBus(Config cfg, const MetricsRegistry* registry,
                           std::function<std::string()> snapshot)
    : cfg_(std::move(cfg)),
      registry_(registry),
      snapshot_(std::move(snapshot)),
      epoch_(Clock::now()) {
  if (!enabled()) return;
  check(cfg_.period_seconds > 0.0,
        "TelemetryBus: period_seconds must be positive");
  check(cfg_.prometheus_path.empty() || registry_ != nullptr,
        "TelemetryBus: prometheus_path needs a registry");
  check(cfg_.ops_feed_path.empty() || snapshot_ != nullptr,
        "TelemetryBus: ops_feed_path needs a snapshot callback");
  // Start each run from an empty feed — a stale feed from a previous
  // process would break the "seq strictly increases" invariant readers
  // (and bench/ops_validate) rely on.
  if (!cfg_.ops_feed_path.empty())
    std::ofstream(cfg_.ops_feed_path, std::ios::trunc);
}

TelemetryBus::~TelemetryBus() { stop(); }

void TelemetryBus::start() {
  if (!enabled()) return;
  {
    const std::lock_guard<std::mutex> lock(run_mu_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
  }
  thread_ = std::thread([this] {
    const auto period = std::chrono::duration<double>(cfg_.period_seconds);
    std::unique_lock<std::mutex> lock(run_mu_);
    while (!stop_requested_) {
      if (cv_.wait_for(lock, period, [this] { return stop_requested_; }))
        break;
      lock.unlock();
      tick();
      lock.lock();
    }
  });
}

void TelemetryBus::stop() {
  {
    const std::lock_guard<std::mutex> lock(run_mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    const std::lock_guard<std::mutex> lock(run_mu_);
    running_ = false;
  }
  // Always leave final-state artifacts, even for runs shorter than one
  // period.
  tick();
}

void TelemetryBus::tick() {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(emit_mu_);
  const auto t_us = std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - epoch_)
                        .count();

  if (!cfg_.ops_feed_path.empty()) {
    // The registry's snapshot document is pretty-printed; flatten it so the
    // feed stays strictly one JSON object per line.
    std::string metrics = snapshot_();
    std::string flat;
    flat.reserve(metrics.size());
    for (const char c : metrics)
      if (c != '\n') flat += c;
    std::ofstream os(cfg_.ops_feed_path, std::ios::app);
    if (os) {
      os << "{\"schema\": \"tbs.ops_feed.v1\", \"seq\": " << seq_
         << ", \"t_us\": " << t_us << ", \"metrics\": " << flat << "}\n";
      ++seq_;
    }
  }

  if (!cfg_.prometheus_path.empty()) {
    std::ofstream os(cfg_.prometheus_path, std::ios::trunc);
    if (os) os << prometheus_text(*registry_);
  }

  ticks_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace tbs::obs
