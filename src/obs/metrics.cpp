#include "obs/metrics.hpp"

#include <algorithm>
#include <fstream>

#include "common/error.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace tbs::obs {

FixedHistogram::FixedHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1, 0),
      exemplars_(bounds_.size() + 1) {
  check(std::is_sorted(bounds_.begin(), bounds_.end()) &&
            std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                bounds_.end(),
        "FixedHistogram: bounds must be strictly increasing");
}

void FixedHistogram::observe(double v, std::uint64_t exemplar_trace_id) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  const std::lock_guard<std::mutex> lock(mu_);
  ++counts_[bucket];
  if (exemplar_trace_id != 0) exemplars_[bucket] = {exemplar_trace_id, v};
  ++count_;
  sum_ += v;
  if (count_ == 1) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
}

FixedHistogram::Snapshot FixedHistogram::snapshot() const {
  Snapshot out;
  out.bounds = bounds_;
  const std::lock_guard<std::mutex> lock(mu_);
  out.counts = counts_;
  out.exemplars = exemplars_;
  out.count = count_;
  out.sum = sum_;
  out.min = min_;
  out.max = max_;
  return out;
}

std::vector<double> default_latency_bounds() {
  return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
          2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5};
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

FixedHistogram& MetricsRegistry::histogram(const std::string& name,
                                           std::vector<double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<FixedHistogram>& slot = histograms_[name];
  if (slot == nullptr)
    slot = std::make_unique<FixedHistogram>(std::move(upper_bounds));
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  // Instrument pointers under the lock, values without it (instruments are
  // atomic / internally locked and never removed).
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const FixedHistogram*>> histograms;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g.get());
    for (const auto& [name, h] : histograms_)
      histograms.emplace_back(name, h.get());
  }
  Snapshot out;
  out.counters.reserve(counters.size());
  for (const auto& [name, c] : counters)
    out.counters.emplace_back(name, c->value());
  out.gauges.reserve(gauges.size());
  for (const auto& [name, g] : gauges) out.gauges.emplace_back(name, g->value());
  out.histograms.reserve(histograms.size());
  for (const auto& [name, h] : histograms)
    out.histograms.emplace_back(name, h->snapshot());
  return out;
}

std::vector<std::string> MetricsRegistry::counter_names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.push_back(name);
  return out;
}

std::string MetricsRegistry::json_snapshot() const {
  // Copy the instrument pointers under the lock, then read the (atomic /
  // internally locked) instruments without holding the registry mutex.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const FixedHistogram*>> histograms;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g.get());
    for (const auto& [name, h] : histograms_)
      histograms.emplace_back(name, h.get());
  }

  std::string out = "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += (i == 0 ? "\n" : ",\n");
    out += "    \"" + json::escape(counters[i].first) +
           "\": " + std::to_string(counters[i].second->value());
  }
  out += counters.empty() ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += (i == 0 ? "\n" : ",\n");
    // A non-finite gauge (Inf qps from a zero-duration run) serializes as
    // an object carrying 0 plus an explicit invalid flag, so the document
    // stays parseable and the reader can tell the 0 is not a measurement.
    bool clamped = false;
    const std::string value =
        json::finite_number(gauges[i].second->value(), &clamped);
    out += "    \"" + json::escape(gauges[i].first) + "\": ";
    out += clamped ? "{\"value\": 0, \"invalid\": true}" : value;
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const FixedHistogram::Snapshot snap = histograms[i].second->snapshot();
    out += (i == 0 ? "\n" : ",\n");
    out += "    \"" + json::escape(histograms[i].first) + "\": {\"buckets\": [";
    for (std::size_t b = 0; b < snap.counts.size(); ++b) {
      if (b != 0) out += ", ";
      const std::string le =
          b < snap.bounds.size() ? json::number(snap.bounds[b]) : "\"inf\"";
      out += "{\"le\": " + le + ", \"count\": " +
             std::to_string(snap.counts[b]);
      if (b < snap.exemplars.size() && snap.exemplars[b].trace_id != 0)
        out += ", \"exemplar_trace_id\": \"" +
               trace_id_hex(snap.exemplars[b].trace_id) + "\"";
      out += "}";
    }
    bool clamped = false;
    out += "], \"count\": " + std::to_string(snap.count) +
           ", \"sum\": " + json::finite_number(snap.sum, &clamped) +
           ", \"mean\": " + json::finite_number(snap.mean(), &clamped) +
           ", \"min\": " + json::finite_number(snap.min, &clamped) +
           ", \"max\": " + json::finite_number(snap.max, &clamped);
    if (clamped) out += ", \"invalid\": true";
    out += "}";
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << json_snapshot();
  return static_cast<bool>(os);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace tbs::obs
