// Profiler hook + model-vs-measured drift reports.
//
// The paper validates its analytical access-count models (Eqs. 2–7)
// against NVIDIA Visual Profiler counters; this file keeps that discipline
// running continuously. Two tools:
//
// 1. Profiler — attaches to a vgpu::Device via its LaunchObserver hook,
//    keeps the most recent per-launch KernelStats (plus a merged total),
//    and emits a `vgpu.launch` span per launch so kernel work shows up in
//    the trace timeline nested under whatever the caller had open.
//
// 2. check_drift() — for each registered kernel variant, calibrates
//    perfmodel::StatsPoly at three small sizes, predicts the access
//    counters at a held-out larger size, measures that size for real, and
//    reports the per-counter relative error. The polynomial model is exact
//    for a stationary input distribution (counts.hpp), so measured drift
//    above kDriftTolerance means the model and the simulator have come
//    apart — the report "fails loudly" via enforce(), and CI gates on it.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "vgpu/device.hpp"
#include "vgpu/stream.hpp"

namespace tbs::backend {
class IBackend;
}  // namespace tbs::backend

namespace tbs::obs {

/// Captures per-launch counters from one device; optionally traces each
/// launch. Installs itself as the device's launch observer on construction
/// and uninstalls on destruction — one profiler per device at a time
/// (installing a second replaces the first's hook; don't).
class Profiler {
 public:
  struct Sample {
    vgpu::LaunchConfig cfg;
    vgpu::KernelStats stats;
    double wall_seconds = 0.0;
    std::uint64_t launch_index = 0;
    bool pooled = false;
  };

  /// `tracer` may be null (no spans, capture only); `keep` bounds the
  /// retained per-launch ring (older samples fall off; totals keep
  /// accumulating).
  explicit Profiler(vgpu::Device& device, Tracer* tracer = nullptr,
                    std::size_t keep = 512);
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Most recent `keep` launches, oldest first.
  [[nodiscard]] std::vector<Sample> samples() const;

  /// Counters merged over every launch observed (not just the ring).
  [[nodiscard]] vgpu::KernelStats total() const;

  [[nodiscard]] std::uint64_t launches() const;

 private:
  void on_launch(const vgpu::LaunchRecord& rec);

  vgpu::Device* dev_;
  Tracer* tracer_;
  std::size_t keep_;
  mutable std::mutex mu_;
  std::deque<Sample> ring_;
  vgpu::KernelStats total_;
  std::uint64_t launches_ = 0;
};

/// Documented drift tolerance: every predicted-vs-measured access counter
/// must be within 5% relative error. The StatsPoly fit is mathematically
/// exact for counters polynomial in the block count; the residual budget
/// covers data-dependent effects (cache hit mixes, atomic collision
/// degrees) that vary slightly between the calibration and verify sizes.
inline constexpr double kDriftTolerance = 0.05;

/// One predicted-vs-measured comparison.
struct DriftRow {
  std::string variant;   ///< registry name, e.g. "Reg-ROC-Out"
  std::string counter;   ///< KernelStats field name
  double predicted = 0.0;
  double measured = 0.0;
  double rel_error = 0.0;  ///< |p - m| / max(|m|, 1)
};

struct DriftReport {
  double tolerance = kDriftTolerance;
  double verify_n = 0.0;  ///< held-out size the predictions were checked at
  /// Which substrate the sweep launched through ("vgpu:<spec>"/"cpu:<N>w").
  std::string backend = "vgpu";
  std::vector<DriftRow> rows;
  /// Variants skipped because their runs carried no simulated device
  /// counters (CPU launches): Eqs. 2–7 model nothing there, so comparing
  /// would report spurious 100% drift instead of a meaningful residual.
  std::vector<std::string> skipped;

  [[nodiscard]] double max_rel_error() const;
  [[nodiscard]] const DriftRow* worst() const;  ///< nullptr when empty
  [[nodiscard]] bool within_tolerance() const;

  /// Throw CheckError naming the worst row if any row exceeds tolerance —
  /// the loud-failure entry point for tests and benches.
  void enforce() const;

  /// {"tolerance": ..., "verify_n": ..., "max_rel_error": ...,
  ///  "within_tolerance": ..., "rows": [{...}]}
  [[nodiscard]] std::string to_json() const;
  bool write_json(const std::string& path) const;
};

/// Which variants and sizes check_drift() sweeps.
struct DriftOptions {
  /// Calibration sizes for the StatsPoly fit (strictly increasing).
  std::array<double, 3> calib_ns = {512, 1024, 2048};
  /// Held-out size predictions are verified against.
  double verify_n = 4096;
  int block_size = 256;
  int buckets = 64;      ///< SDH histogram size
  double radius = 2.0;   ///< PCF cutoff
  double tolerance = kDriftTolerance;
  /// Restrict to planner-eligible variants (the ones serving traffic);
  /// false sweeps every registered variant.
  bool plannable_only = true;
  /// Optional name filter: when non-empty, only variants whose registry
  /// name appears here are checked (e.g. the serving defaults).
  std::vector<std::string> only_variants;
};

/// Run the drift sweep on `stream`'s device. Each row compares one access
/// counter (global/shared/ROC loads+stores+atomics, shuffles, warp cycles)
/// of one variant. Deterministic: fixed datagen seeds, fixed sizes.
DriftReport check_drift(vgpu::Stream& stream, const DriftOptions& opt = {});

/// Backend-seam overload: the sweep launches through `be`, prices only the
/// variants its registry mask admits, and *skips* (records in
/// DriftReport::skipped) any variant whose measured run has no simulated
/// device counters — a CPU launch has nothing for Eqs. 2–7 to predict, so
/// the CI drift gate passes cleanly instead of failing with 100% error.
DriftReport check_drift(backend::IBackend& be, const DriftOptions& opt = {});

/// True when the stats carry at least one simulated-device access counter
/// (the fields drift_counters() compares). CPU launches report host-side
/// facts only, so this is the drift sweep's skip predicate.
bool has_simulated_counters(const vgpu::KernelStats& s);

/// The KernelStats counters the drift sweep compares, as (name, value)
/// pairs — exposed so tests and the report stay in sync.
std::vector<std::pair<std::string, double>> drift_counters(
    const vgpu::KernelStats& s);

// ---- Continuous profiling: folding the span tree ----
//
// The tracer's span set is a timeline; these helpers fold it into the two
// classic aggregate views: collapsed stacks (the flamegraph input format —
// one "root;child;leaf <µs>" line per distinct stack, value = self time)
// and a top-down time-accounting table (inclusive/self/count per stack
// path). Parentage is resolved from span ids where a trace context was
// recorded, and from per-thread (ts, depth) nesting for context-free spans
// — so one fold covers engine spans, planner spans, and retroactive
// queue-wait spans on synthetic tracks alike.

/// Fold completed spans into collapsed-stack lines, sorted, one per
/// distinct stack: "a;b;c <integer µs of self time>". Stacks whose self
/// time rounds to zero µs are omitted.
std::string collapsed_stacks(const std::vector<SpanRecord>& spans);

/// collapsed_stacks() over everything `tracer` has collected.
std::string collapsed_stacks(const Tracer& tracer);

/// One stack path's totals in the time-accounting view.
struct TimeAccountRow {
  std::string path;       ///< "a;b;c"
  double total_us = 0.0;  ///< inclusive (sum of span durations at path)
  double self_us = 0.0;   ///< exclusive of child spans, clamped >= 0
  std::uint64_t count = 0;
};

/// Top-down accounting: one row per distinct stack path, sorted by
/// inclusive time descending.
std::vector<TimeAccountRow> time_accounting(
    const std::vector<SpanRecord>& spans);

/// Render rows as an aligned text table (truncated to `max_rows`).
std::string time_accounting_text(const std::vector<TimeAccountRow>& rows,
                                 std::size_t max_rows = 30);

/// Write collapsed_stacks(tracer) to `path`; false if the file won't open.
bool write_collapsed(const Tracer& tracer, const std::string& path);

}  // namespace tbs::obs
