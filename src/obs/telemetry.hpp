// TelemetryBus — the live ops plane's export side.
//
// Two artifacts, refreshed by a background snapshotter thread:
//
//   * a JSONL ops feed: one line per tick, schema "tbs.ops_feed.v1",
//     carrying a sequence number, the tick time, and the full metrics
//     snapshot (counters / gauges / histograms with exemplars). Appending
//     a line per tick makes the feed a replayable health history — `tail
//     -f` is the poor man's dashboard, and the validator can check every
//     line independently;
//   * a Prometheus-style text exposition of the same registry: sanitized
//     `tbs_`-prefixed metric names, cumulative `_bucket{le="..."}` series
//     with `_sum`/`_count`, and OpenMetrics-style exemplar suffixes
//     (`# {trace_id="..."} value`) on buckets that have one — the bridge
//     from a metrics scrape back to a concrete trace.
//
// The bus takes a snapshot callback rather than reading the registry
// directly so the owner (the serve engine) can refresh derived gauges
// before each emission; prometheus_text() is a free function over the
// registry for callers that want the exposition without a bus.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace tbs::obs {

/// The registry as a Prometheus text exposition. Names are sanitized
/// (dots and any non-[a-zA-Z0-9_:] become '_') and prefixed "tbs_";
/// histogram buckets are emitted cumulatively with a final +Inf bucket,
/// `_sum` and `_count`, and an exemplar suffix where a bucket has one.
std::string prometheus_text(const MetricsRegistry& registry);

/// Sanitize one metric name the way prometheus_text() does.
std::string prometheus_name(std::string_view name);

/// Escape one label value for the text exposition: `\` -> `\\`, `"` ->
/// `\"`, newline -> the two characters `\n`. Every label value the
/// exposition emits (bucket `le`, exemplar `trace_id`) goes through this —
/// a quote or newline smuggled into a value must not break the scrape
/// grammar.
std::string prometheus_label_value(std::string_view value);

class TelemetryBus {
 public:
  struct Config {
    /// Seconds between ticks; must be positive when a path is set.
    double period_seconds = 0.5;
    /// JSONL ops feed path; "" disables the feed.
    std::string ops_feed_path;
    /// Prometheus text exposition path (rewritten whole each tick);
    /// "" disables the exposition.
    std::string prometheus_path;
  };

  /// `registry` backs the Prometheus exposition; `snapshot` produces the
  /// ops-feed metrics document (typically the owner's metrics_json(), so
  /// derived gauges refresh per tick). Either may be skipped by leaving
  /// the corresponding path empty. Does not start the thread.
  TelemetryBus(Config cfg, const MetricsRegistry* registry,
               std::function<std::string()> snapshot);

  /// stop()s.
  ~TelemetryBus();

  TelemetryBus(const TelemetryBus&) = delete;
  TelemetryBus& operator=(const TelemetryBus&) = delete;

  [[nodiscard]] bool enabled() const {
    return !cfg_.ops_feed_path.empty() || !cfg_.prometheus_path.empty();
  }

  /// Spawn the snapshotter (no-op when disabled or already running).
  void start();

  /// Stop the snapshotter after one final tick, so even a run shorter
  /// than a period leaves complete artifacts. Idempotent.
  void stop();

  /// Emit one feed line + exposition right now (what the thread calls
  /// every period; also callable directly, e.g. from tests).
  void tick();

  [[nodiscard]] std::uint64_t ticks() const {
    return ticks_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  Config cfg_;
  const MetricsRegistry* registry_;
  std::function<std::string()> snapshot_;
  Clock::time_point epoch_;

  std::mutex emit_mu_;  ///< serializes tick() bodies (thread vs. manual)
  std::atomic<std::uint64_t> ticks_{0};
  std::uint64_t seq_ = 0;  ///< feed line sequence, guarded by emit_mu_

  std::mutex run_mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace tbs::obs
