#include "common/datagen.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"

namespace tbs {

PointsSoA uniform_box(std::size_t n, float box, std::uint64_t seed) {
  check(box > 0.0f, "uniform_box: box must be positive");
  Rng rng(seed);
  PointsSoA pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.set(i, {static_cast<float>(rng.uniform(0.0, box)),
                static_cast<float>(rng.uniform(0.0, box)),
                static_cast<float>(rng.uniform(0.0, box))});
  }
  return pts;
}

PointsSoA gaussian_clusters(std::size_t n, std::size_t k, float box,
                            float sigma, std::uint64_t seed) {
  check(k > 0, "gaussian_clusters: need at least one cluster");
  check(box > 0.0f, "gaussian_clusters: box must be positive");
  Rng rng(seed);
  std::vector<Point3> centres(k);
  for (auto& c : centres) {
    c = {static_cast<float>(rng.uniform(0.0, box)),
         static_cast<float>(rng.uniform(0.0, box)),
         static_cast<float>(rng.uniform(0.0, box))};
  }
  const auto clamp01 = [box](double v) {
    return static_cast<float>(std::clamp(v, 0.0, static_cast<double>(box) -
                                                     1e-4));
  };
  PointsSoA pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Point3& c = centres[rng.uniform_index(k)];
    pts.set(i, {clamp01(c.x + sigma * rng.gaussian()),
                clamp01(c.y + sigma * rng.gaussian()),
                clamp01(c.z + sigma * rng.gaussian())});
  }
  return pts;
}

namespace {

/// Integer cell key for the dart-throwing grid.
struct CellKey {
  int cx, cy, cz;
  friend bool operator==(const CellKey&, const CellKey&) = default;
};

struct CellKeyHash {
  std::size_t operator()(const CellKey& k) const noexcept {
    std::uint64_t h = static_cast<std::uint32_t>(k.cx);
    h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint32_t>(k.cy);
    h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint32_t>(k.cz);
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

}  // namespace

PointsSoA hardcore_gas(std::size_t n, float box, float min_dist,
                       std::uint64_t seed) {
  check(box > 0.0f && min_dist > 0.0f, "hardcore_gas: bad geometry");
  // Feasibility guard: random sequential adsorption in 3-D saturates around
  // 38% sphere packing; stay well below it so dart throwing terminates.
  const double sphere_vol =
      4.0 / 3.0 * 3.14159265358979 * std::pow(min_dist / 2.0, 3);
  const double packing = static_cast<double>(n) * sphere_vol /
                         std::pow(static_cast<double>(box), 3);
  check(packing < 0.20,
        "hardcore_gas: requested packing fraction too high to generate");

  const float cell = min_dist;  // neighbours are within +-1 cell
  std::unordered_map<CellKey, std::vector<Point3>, CellKeyHash> grid;
  Rng rng(seed);
  PointsSoA pts;
  pts.reserve(n);
  const float min_d2 = min_dist * min_dist;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 2000 * n + 100000;
  while (pts.size() < n) {
    check(++attempts <= max_attempts,
          "hardcore_gas: dart throwing failed to converge");
    const Point3 p{static_cast<float>(rng.uniform(0.0, box)),
                   static_cast<float>(rng.uniform(0.0, box)),
                   static_cast<float>(rng.uniform(0.0, box))};
    const CellKey key{static_cast<int>(p.x / cell),
                      static_cast<int>(p.y / cell),
                      static_cast<int>(p.z / cell)};
    bool ok = true;
    for (int dx = -1; dx <= 1 && ok; ++dx) {
      for (int dy = -1; dy <= 1 && ok; ++dy) {
        for (int dz = -1; dz <= 1 && ok; ++dz) {
          const auto it =
              grid.find(CellKey{key.cx + dx, key.cy + dy, key.cz + dz});
          if (it == grid.end()) continue;
          for (const Point3& q : it->second) {
            if (dist2(p, q) < min_d2) {
              ok = false;
              break;
            }
          }
        }
      }
    }
    if (!ok) continue;
    grid[key].push_back(p);
    pts.push_back(p);
  }
  return pts;
}

PointsSoA jittered_lattice(std::size_t n, float box, float jitter,
                           std::uint64_t seed) {
  check(box > 0.0f && jitter >= 0.0f, "jittered_lattice: bad geometry");
  // Smallest side with side^3 >= n (integer check avoids cbrt round-off,
  // e.g. cbrt(216) = 6 + eps must not become side 7).
  std::size_t side = static_cast<std::size_t>(
      std::llround(std::cbrt(static_cast<double>(n))));
  if (side == 0) side = 1;
  while (side * side * side < n) ++side;
  while (side > 1 && (side - 1) * (side - 1) * (side - 1) >= n) --side;
  const float spacing = box / static_cast<float>(side);
  Rng rng(seed);
  PointsSoA pts;
  pts.reserve(n);
  for (std::size_t ix = 0; ix < side && pts.size() < n; ++ix) {
    for (std::size_t iy = 0; iy < side && pts.size() < n; ++iy) {
      for (std::size_t iz = 0; iz < side && pts.size() < n; ++iz) {
        const auto j = [&rng, jitter] {
          return static_cast<float>(rng.uniform(-jitter, jitter));
        };
        pts.push_back({(static_cast<float>(ix) + 0.5f) * spacing + j(),
                       (static_cast<float>(iy) + 0.5f) * spacing + j(),
                       (static_cast<float>(iz) + 0.5f) * spacing + j()});
      }
    }
  }
  return pts;
}

}  // namespace tbs
