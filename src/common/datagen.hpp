// Synthetic workload generators.
//
// The paper evaluates on "synthetic data ... generated following a uniform
// distribution in a region" (Sec. IV-B). We provide that generator plus
// clustered and hard-core processes so that examples and property tests can
// exercise non-uniform inputs:
//   * uniform_box      — the paper's workload (CSR / ideal-gas process);
//   * gaussian_clusters— galaxy-like clustered data for 2-PCF demos;
//   * hardcore_gas     — minimum-separation process, gives an RDF with an
//                        exclusion hole and contact peak like a simple liquid;
//   * jittered_lattice — crystal-like configuration with sharp RDF peaks.
#pragma once

#include <cstdint>

#include "common/points.hpp"
#include "common/rng.hpp"

namespace tbs {

/// n points uniform in the cube [0, box)^3.
PointsSoA uniform_box(std::size_t n, float box, std::uint64_t seed);

/// n points drawn from k isotropic Gaussian blobs whose centres are uniform
/// in [0, box)^3; sigma is the blob standard deviation. Points are clamped
/// into the box.
PointsSoA gaussian_clusters(std::size_t n, std::size_t k, float box,
                            float sigma, std::uint64_t seed);

/// n points uniform in [0, box)^3 subject to a minimum pair separation
/// `min_dist` (dart throwing on a uniform grid). Throws if the requested
/// density is infeasible (packing fraction too high).
PointsSoA hardcore_gas(std::size_t n, float box, float min_dist,
                       std::uint64_t seed);

/// Simple-cubic lattice filling [0, box)^3 with at least n sites, truncated
/// to exactly n points, each jittered by a uniform displacement in
/// [-jitter, jitter]^3.
PointsSoA jittered_lattice(std::size_t n, float box, float jitter,
                           std::uint64_t seed);

}  // namespace tbs
