#include "common/fingerprint.hpp"

namespace tbs {

std::uint64_t dataset_fingerprint(const PointsSoA& pts) {
  Fnv1a h;
  h.u64(pts.size());
  h.floats(pts.x());
  h.floats(pts.y());
  h.floats(pts.z());
  return h.value();
}

std::uint64_t shard_fingerprint(const PointsSoA& shard_pts,
                                std::size_t shard_index,
                                std::size_t shard_count) {
  Fnv1a h;
  h.u64(shard_index);
  h.u64(shard_count);
  h.u64(dataset_fingerprint(shard_pts));
  return h.value();
}

}  // namespace tbs
