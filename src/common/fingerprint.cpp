#include "common/fingerprint.hpp"

#include <cmath>
#include <cstring>
#include <limits>

namespace tbs {

namespace {

/// Canonical bit pattern: +0.0 for either zero, one quiet NaN for every
/// NaN payload, the value's own bits otherwise.
std::uint64_t canonical_bits(double v) {
  if (v == 0.0) v = 0.0;  // -0.0 == 0.0, so both take the +0.0 pattern
  if (std::isnan(v)) v = std::numeric_limits<double>::quiet_NaN();
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

std::uint32_t canonical_bits(float v) {
  if (v == 0.0f) v = 0.0f;
  if (std::isnan(v)) v = std::numeric_limits<float>::quiet_NaN();
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

}  // namespace

std::uint64_t dataset_fingerprint(const PointsSoA& pts) {
  Fnv1a h;
  h.u64(pts.size());
  h.floats(pts.x());
  h.floats(pts.y());
  h.floats(pts.z());
  return h.value();
}

std::uint64_t shard_fingerprint(const PointsSoA& shard_pts,
                                std::size_t shard_index,
                                std::size_t shard_count) {
  Fnv1a h;
  h.u64(shard_index);
  h.u64(shard_count);
  h.u64(dataset_fingerprint(shard_pts));
  return h.value();
}

std::uint64_t checksum(std::span<const double> v) {
  Fnv1a h;
  h.u64(v.size());
  for (const double d : v) h.u64(canonical_bits(d));
  return h.value();
}

std::uint64_t checksum(std::span<const float> v) {
  Fnv1a h;
  h.u64(v.size());
  for (const float f : v) {
    const std::uint32_t bits = canonical_bits(f);
    h.bytes(&bits, sizeof bits);
  }
  return h.value();
}

}  // namespace tbs
