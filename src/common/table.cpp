#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace tbs {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  check(!headers_.empty(), "TextTable: need at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  check(cells.size() == headers_.size(),
        "TextTable::add_row: cell count must match header count");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << v;
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
      os << (c + 1 < row.size() ? "  " : "\n");
    }
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

void print_ascii_chart(
    std::ostream& os, const std::string& title, const std::vector<double>& x,
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    bool log_y) {
  constexpr int kRows = 16;
  constexpr int kCols = 64;
  if (x.empty() || series.empty()) return;

  double lo = 1e300;
  double hi = -1e300;
  for (const auto& [name, ys] : series) {
    for (double v : ys) {
      const double t = log_y ? std::log10(std::max(v, 1e-12)) : v;
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
  }
  if (hi <= lo) hi = lo + 1.0;

  std::vector<std::string> canvas(kRows, std::string(kCols, ' '));
  const double x_lo = x.front();
  const double x_hi = x.back() > x_lo ? x.back() : x_lo + 1.0;
  static constexpr char kGlyphs[] = "*o+x#@%&";
  for (std::size_t s = 0; s < series.size(); ++s) {
    const auto& ys = series[s].second;
    const char glyph = kGlyphs[s % (sizeof(kGlyphs) - 1)];
    for (std::size_t i = 0; i < ys.size() && i < x.size(); ++i) {
      const double ty =
          log_y ? std::log10(std::max(ys[i], 1e-12)) : ys[i];
      const int col = static_cast<int>((x[i] - x_lo) / (x_hi - x_lo) *
                                       (kCols - 1));
      const int row = static_cast<int>((ty - lo) / (hi - lo) * (kRows - 1));
      canvas[kRows - 1 - row][col] = glyph;
    }
  }

  os << "  " << title << (log_y ? "   [log-y]" : "") << "\n";
  for (const auto& line : canvas) os << "  |" << line << "\n";
  os << "  +" << std::string(kCols, '-') << "\n  legend:";
  for (std::size_t s = 0; s < series.size(); ++s)
    os << "  " << kGlyphs[s % (sizeof(kGlyphs) - 1)] << "=" << series[s].first;
  os << "\n";
}

}  // namespace tbs
