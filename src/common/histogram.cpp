#include "common/histogram.hpp"

#include <cmath>
#include <numbers>

namespace tbs {

std::vector<double> radial_distribution(const Histogram& sdh, std::size_t n,
                                        double box) {
  check(n >= 2, "radial_distribution: need at least two points");
  check(box > 0.0, "radial_distribution: box must be positive");
  const double density = static_cast<double>(n) / (box * box * box);
  const double w = sdh.bucket_width();
  std::vector<double> g(sdh.bucket_count(), 0.0);
  for (std::size_t b = 0; b < g.size(); ++b) {
    const double r_lo = static_cast<double>(b) * w;
    const double r_hi = r_lo + w;
    const double shell_vol =
        4.0 / 3.0 * std::numbers::pi *
        (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    // Expected unordered pair count in the shell for an ideal gas.
    const double expected =
        0.5 * static_cast<double>(n) * density * shell_vol;
    g[b] = expected > 0.0 ? static_cast<double>(sdh[b]) / expected : 0.0;
  }
  return g;
}

}  // namespace tbs
