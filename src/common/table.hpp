// Plain-text table and series rendering for benchmark output.
//
// Bench binaries reproduce the paper's tables/figures as aligned text; this
// keeps the harness dependency-free and diff-friendly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tbs {

/// Aligned ASCII table. Columns are sized to fit the widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with the given precision.
  static std::string num(double v, int precision = 3);

  /// Render with a header underline and two-space column gaps.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a y-vs-x series as a fixed-width ASCII chart (log-y optional).
/// Useful for eyeballing the figure shapes directly in bench output.
void print_ascii_chart(std::ostream& os, const std::string& title,
                       const std::vector<double>& x,
                       const std::vector<std::pair<std::string,
                                                   std::vector<double>>>&
                           series,
                       bool log_y);

}  // namespace tbs
