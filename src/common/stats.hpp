// Small numeric helpers shared by tests and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>

#include "common/error.hpp"

namespace tbs {

/// Arithmetic mean. Precondition: non-empty.
inline double mean(std::span<const double> v) {
  check(!v.empty(), "mean of empty range");
  double s = 0.0;
  for (const double x : v) s += x;
  return s / static_cast<double>(v.size());
}

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
inline double stddev(std::span<const double> v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (const double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

/// Geometric mean. Precondition: non-empty, all positive.
inline double geomean(std::span<const double> v) {
  check(!v.empty(), "geomean of empty range");
  double s = 0.0;
  for (const double x : v) {
    check(x > 0.0, "geomean requires positive values");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(v.size()));
}

/// Relative difference |a-b| / max(|a|,|b|,eps).
inline double rel_diff(double a, double b, double eps = 1e-300) {
  const double scale = std::max({std::fabs(a), std::fabs(b), eps});
  return std::fabs(a - b) / scale;
}

}  // namespace tbs
