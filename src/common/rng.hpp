// Deterministic, portable pseudo-random number generation.
//
// We implement xoshiro256** (Blackman & Vigna) seeded through splitmix64 so
// that data generation is bit-reproducible across platforms and compilers —
// std::mt19937 distributions are not guaranteed to produce identical streams
// across standard-library implementations, which would make golden tests
// brittle.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>

namespace tbs {

/// splitmix64 step; used only for seeding.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x2b5d1e7fc0ffee11ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    // Lemire-style rejection-free bounded sampling (bias negligible for our
    // n << 2^64, but we do the widening multiply anyway for correctness).
    const unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * n;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller (deterministic across platforms).
  double gaussian() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = 0.0;
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return r * std::cos(theta);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace tbs
