// Lightweight runtime-check helpers used across the library.
//
// We deliberately avoid macros (C++ Core Guidelines ES.30/ES.31); call sites
// pass std::source_location implicitly so error messages stay useful.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace tbs {

/// Thrown when a precondition or internal invariant is violated.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Abort the current operation with a CheckError carrying file:line context.
[[noreturn]] inline void fail(
    const std::string& msg,
    std::source_location loc = std::source_location::current()) {
  throw CheckError(std::string(loc.file_name()) + ":" +
                   std::to_string(loc.line()) + ": " + msg);
}

/// Verify a condition; throws CheckError with context when it does not hold.
inline void check(bool cond, const std::string& msg,
                  std::source_location loc = std::source_location::current()) {
  if (!cond) fail(msg, loc);
}

}  // namespace tbs
