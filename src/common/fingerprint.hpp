// Content fingerprints — FNV-1a over raw coordinate bytes.
//
// One hash family identifies datasets everywhere: the serve layer's result
// cache and coalescing key (serve/request.hpp wraps dataset_fingerprint),
// and the shard subsystem's staged-data identity (shard_fingerprint keys
// which lane already holds which shard). The accumulator is exposed so a
// consumer can fingerprint streamed data — feeding the whole dataset
// through one Fnv1a in dataset_fingerprint's field order reproduces
// dataset_fingerprint exactly, which is what keeps sharded and unsharded
// submissions of the same points on the same cache entry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/points.hpp"

namespace tbs {

/// Incremental FNV-1a (64-bit). Byte-order sensitive: two accumulators fed
/// the same bytes in the same order agree, any reordering diverges.
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffset = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  void bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      h_ ^= p[i];
      h_ *= kPrime;
    }
  }

  void floats(std::span<const float> v) { bytes(v.data(), v.size_bytes()); }

  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }

  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = kOffset;
};

/// FNV-1a over the point count and the three coordinate lanes (n, x[],
/// y[], z[]). Identifies a dataset by content: equal point sets hash equal
/// regardless of which container owns them.
std::uint64_t dataset_fingerprint(const PointsSoA& pts);

/// Fingerprint of one shard of a partitioned dataset: the shard's own
/// content fingerprint folded with its position and the partition arity.
/// Two shards collide only if they hold the same points at the same index
/// of an equal-K partition — so a lane's staged-data table can key on this
/// alone, and re-partitioning (different K or strategy) never aliases a
/// stale staging entry.
std::uint64_t shard_fingerprint(const PointsSoA& shard_pts,
                                std::size_t shard_index,
                                std::size_t shard_count);

/// Value checksum over a numeric span — FNV-1a over *canonicalized* bit
/// patterns: -0.0 hashes like +0.0 and every NaN hashes like one quiet
/// NaN, so the checksum identifies the numeric payload rather than the
/// exact encoding. Used by the serve integrity layer to verify a staged
/// buffer survived the round trip bit-meaningfully intact.
std::uint64_t checksum(std::span<const double> v);
std::uint64_t checksum(std::span<const float> v);

}  // namespace tbs
