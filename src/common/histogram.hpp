// Distance histogram — the output structure of Type-II 2-BS problems.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace tbs {

/// Fixed-width histogram over [0, bucket_width * bucket_count).
///
/// This is the host-side ground-truth representation of the SDH output; the
/// GPU kernels produce a flat count array with the same bucketing rule, so
/// results are comparable bucket-for-bucket.
class Histogram {
 public:
  Histogram() = default;

  Histogram(double bucket_width, std::size_t bucket_count)
      : width_(bucket_width), counts_(bucket_count, 0) {
    check(bucket_width > 0.0, "Histogram: bucket width must be positive");
    check(bucket_count > 0, "Histogram: need at least one bucket");
  }

  [[nodiscard]] double bucket_width() const noexcept { return width_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }

  /// Bucket index for a value; values beyond the range clamp into the last
  /// bucket (matches the device kernels, which clamp rather than branch).
  [[nodiscard]] std::size_t bucket_of(double v) const noexcept {
    const auto b = static_cast<std::size_t>(v / width_);
    return b < counts_.size() ? b : counts_.size() - 1;
  }

  void add(double v, std::uint64_t weight = 1) noexcept {
    counts_[bucket_of(v)] += weight;
  }

  [[nodiscard]] std::uint64_t operator[](std::size_t b) const {
    return counts_.at(b);
  }

  /// Overwrite one bucket (used when importing device results).
  void set_count(std::size_t b, std::uint64_t c) { counts_.at(b) = c; }

  [[nodiscard]] std::span<const std::uint64_t> counts() const noexcept {
    return counts_;
  }

  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t s = 0;
    for (const auto c : counts_) s += c;
    return s;
  }

  /// Element-wise merge of another histogram with identical geometry.
  void merge(const Histogram& other) {
    check(other.counts_.size() == counts_.size() && other.width_ == width_,
          "Histogram::merge: geometry mismatch");
    for (std::size_t i = 0; i < counts_.size(); ++i)
      counts_[i] += other.counts_[i];
  }

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  double width_ = 1.0;
  std::vector<std::uint64_t> counts_;
};

/// Radial distribution function g(r): SDH normalized by the ideal-gas shell
/// expectation. `n` is the point count, `box` the cubic box side used to
/// compute number density. Returns one g value per histogram bucket.
std::vector<double> radial_distribution(const Histogram& sdh, std::size_t n,
                                        double box);

}  // namespace tbs
