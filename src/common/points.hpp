// Point-set container in structure-of-arrays (SoA) layout.
//
// Section IV-A of the paper requires the input to be stored as "multiple
// arrays of single-dimension values instead of an array of structures" so
// that a warp's loads of one coordinate are coalesced. The vgpu executor's
// coalescing analyzer is what rewards this layout, so the container exposes
// the per-coordinate arrays directly.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace tbs {

/// A single 3-D point; convenience AoS view used by scalar (CPU) code.
struct Point3 {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  friend constexpr bool operator==(const Point3&, const Point3&) = default;
};

/// Squared Euclidean distance between two points.
constexpr float dist2(const Point3& a, const Point3& b) noexcept {
  const float dx = a.x - b.x;
  const float dy = a.y - b.y;
  const float dz = a.z - b.z;
  return dx * dx + dy * dy + dz * dz;
}

/// Euclidean distance between two points.
inline float dist(const Point3& a, const Point3& b) noexcept {
  return std::sqrt(dist2(a, b));
}

/// 3-D point set in SoA layout; the canonical input of every 2-BS problem.
class PointsSoA {
 public:
  PointsSoA() = default;

  /// Create an n-point set with all coordinates zero.
  explicit PointsSoA(std::size_t n) : x_(n), y_(n), z_(n) {}

  [[nodiscard]] std::size_t size() const noexcept { return x_.size(); }
  [[nodiscard]] bool empty() const noexcept { return x_.empty(); }

  void reserve(std::size_t n) {
    x_.reserve(n);
    y_.reserve(n);
    z_.reserve(n);
  }

  void push_back(const Point3& p) {
    x_.push_back(p.x);
    y_.push_back(p.y);
    z_.push_back(p.z);
  }

  /// Drop all points but keep capacity.
  void clear() noexcept {
    x_.clear();
    y_.clear();
    z_.clear();
  }

  [[nodiscard]] Point3 operator[](std::size_t i) const noexcept {
    return {x_[i], y_[i], z_[i]};
  }

  void set(std::size_t i, const Point3& p) noexcept {
    x_[i] = p.x;
    y_[i] = p.y;
    z_[i] = p.z;
  }

  [[nodiscard]] std::span<const float> x() const noexcept { return x_; }
  [[nodiscard]] std::span<const float> y() const noexcept { return y_; }
  [[nodiscard]] std::span<const float> z() const noexcept { return z_; }
  [[nodiscard]] std::span<float> x() noexcept { return x_; }
  [[nodiscard]] std::span<float> y() noexcept { return y_; }
  [[nodiscard]] std::span<float> z() noexcept { return z_; }

  /// Truncate or zero-extend to exactly n points.
  void resize(std::size_t n) {
    x_.resize(n);
    y_.resize(n);
    z_.resize(n);
  }

  /// Axis-aligned bounding box, as {min, max}. Precondition: non-empty.
  [[nodiscard]] std::array<Point3, 2> bounding_box() const {
    check(!empty(), "bounding_box of empty point set");
    Point3 lo = (*this)[0];
    Point3 hi = lo;
    for (std::size_t i = 1; i < size(); ++i) {
      const Point3 p = (*this)[i];
      lo.x = std::min(lo.x, p.x);
      lo.y = std::min(lo.y, p.y);
      lo.z = std::min(lo.z, p.z);
      hi.x = std::max(hi.x, p.x);
      hi.y = std::max(hi.y, p.y);
      hi.z = std::max(hi.z, p.z);
    }
    return {lo, hi};
  }

  /// Largest pairwise distance that can occur inside the bounding box.
  [[nodiscard]] float max_possible_distance() const {
    const auto [lo, hi] = bounding_box();
    return dist(lo, hi);
  }

 private:
  std::vector<float> x_;
  std::vector<float> y_;
  std::vector<float> z_;
};

}  // namespace tbs
