// IBackend — the execution-substrate seam.
//
// Every layer above the kernels used to be hard-wired to vgpu::Stream;
// this interface makes the substrate a value. The shape follows the
// IGpuBackend idiom (init / allocate+upload / run / readback), collapsed
// to what this simulator needs:
//
//   caps()       capability negotiation: substrate kind, registry backend
//                mask, parallelism, shared-memory budget
//   can_launch() per-(variant, problem, block) launchability — e.g. a vgpu
//                backend refuses variants whose shared demand exceeds the
//                device cap; a CPU backend refuses vgpu-only variants
//   stage()      buffer alloc + upload of a point set (readback happens
//                through the KernelOutput sinks a launch fills)
//   launch()     typed launch of one registry variant
//   estimate()   the backend's own cost model for a candidate — the
//                planner prices (backend × variant × block) through this,
//                so heterogeneous placement needs no backend-specific code
//                in core::plan()
//   counters()   snapshot for dashboards and "zero new launches" tests
//
// Implementations: VgpuBackend (wraps Device/Stream; fault injection and
// launch observers flow through untouched) and CpuBackend (thread-pool +
// tiled loops + the sub-quadratic tree path).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/points.hpp"
#include "kernels/registry.hpp"
#include "vgpu/stats.hpp"

namespace tbs::backend {

enum class Kind { Vgpu, Cpu };

const char* to_string(Kind k);

/// What a backend can do — the negotiation half of the seam.
struct Capabilities {
  Kind kind = Kind::Vgpu;
  /// Stable identity, e.g. "vgpu:sim-titan-x" or "cpu:8w". Plans and cache
  /// keys carry this string, never a pointer to the backend.
  std::string name;
  /// The kernels::kBackend* bit this backend launches through; variants are
  /// filtered by KernelVariant::supports(registry_mask).
  unsigned registry_mask = 0;
  /// SM count (vgpu) or worker threads (cpu).
  int parallel_units = 0;
  /// Per-block dynamic shared memory budget; 0 when not applicable.
  std::size_t shared_mem_per_block_cap = 0;
};

/// One priced candidate, in the backend's own cost model.
struct Estimate {
  double seconds = 0.0;
  std::string bottleneck;  ///< e.g. "compute", "shared", "cpu-pairs"
};

/// Monotonic per-backend counters (snapshot semantics).
struct Counters {
  std::uint64_t launches = 0;      ///< successful kernel launches
  std::uint64_t faults = 0;        ///< device errors surfaced by launches
  std::uint64_t bytes_staged = 0;  ///< bytes moved through stage()
};

class IBackend {
 public:
  virtual ~IBackend() = default;

  [[nodiscard]] virtual const Capabilities& caps() const = 0;

  /// Registry-mask check only — the cheap half of can_launch().
  [[nodiscard]] bool supports(const kernels::KernelVariant& v) const {
    return v.supports(caps().registry_mask);
  }

  /// Full launchability check for a concrete configuration.
  [[nodiscard]] virtual bool can_launch(const kernels::KernelVariant& v,
                                        const kernels::ProblemDesc& desc,
                                        int block_size) const = 0;

  /// Allocate + upload the point set to the substrate; returns the bytes
  /// moved. Idempotent per dataset; launches restage internally as needed
  /// (the simulator's kernels own their staging), so this exists for
  /// transfer accounting and warm-up, not correctness.
  virtual std::size_t stage(const PointsSoA& pts) = 0;

  /// Launch `v` on this substrate and fill `out` (the readback sinks).
  /// Throws vgpu::DeviceError on (injected) device faults; CPU launches
  /// only throw on precondition violations.
  virtual vgpu::KernelStats launch(const kernels::KernelVariant& v,
                                   const PointsSoA& pts,
                                   const kernels::ProblemDesc& desc,
                                   int block_size,
                                   kernels::KernelOutput& out) = 0;

  /// Launch the fixed cross-set kernel for `desc.type` over the
  /// anchors × partners rectangle and fill `out` — the unit of work a
  /// cross-shard tile executes (see src/shard/). Unlike launch(), the
  /// kernel is not a registry variant: each substrate has one cross recipe
  /// per problem type (Reg-ROC + privatized output on vgpu, the tiled loop
  /// on CPU), and both bucket through the same double-precision division,
  /// so summing tile partials stays bit-identical to a single-set run.
  /// Throws vgpu::DeviceError on (injected) device faults.
  virtual vgpu::KernelStats launch_cross(const PointsSoA& anchors,
                                         const PointsSoA& partners,
                                         const kernels::ProblemDesc& desc,
                                         int block_size,
                                         kernels::KernelOutput& out) = 0;

  /// Price running `v` on `target_n` points. `sample` supplies the data
  /// distribution for calibration; implementations may launch small
  /// calibration runs through themselves.
  [[nodiscard]] virtual Estimate estimate(const kernels::KernelVariant& v,
                                          const PointsSoA& sample,
                                          const kernels::ProblemDesc& desc,
                                          int block_size,
                                          double target_n) = 0;

  [[nodiscard]] virtual Counters counters() const = 0;
};

}  // namespace tbs::backend
