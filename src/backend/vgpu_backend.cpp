#include "backend/vgpu_backend.hpp"

#include <array>
#include <cstring>

#include "common/error.hpp"
#include "kernels/cross.hpp"
#include "perfmodel/counts.hpp"
#include "perfmodel/timemodel.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/fault.hpp"

namespace tbs::backend {

namespace {

Capabilities caps_for(const vgpu::DeviceSpec& spec) {
  Capabilities c;
  c.kind = Kind::Vgpu;
  c.name = std::string("vgpu:") + spec.name;
  c.registry_mask = kernels::kBackendVgpu;
  c.parallel_units = spec.sm_count;
  c.shared_mem_per_block_cap = spec.shared_mem_per_block_cap;
  return c;
}

/// Calibration sizes: multiples of every candidate block size, matching
/// the planner's historical grid so cached plans stay comparable.
constexpr std::array<double, 3> kCalibN = {512, 1024, 2048};

/// Truncate the sample to n points (cycling if the sample is smaller).
PointsSoA take(const PointsSoA& sample, std::size_t n) {
  check(!sample.empty(), "VgpuBackend::estimate: empty sample");
  PointsSoA out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(sample[i % sample.size()]);
  return out;
}

/// Consumes the device injector's silent-corruption stream for one launch.
vgpu::SilentFault next_silent(vgpu::Device& dev) {
  vgpu::FaultInjector* inj = dev.fault_injector();
  if (inj == nullptr || !inj->plan().silent_enabled())
    return vgpu::SilentFault::None;
  return inj->next_silent();
}

/// Silent staged-buffer corruption: flip the top mantissa bit of one
/// coordinate before the kernel sees it. The perturbation is large (up to
/// 50% of the value) so the corrupted histogram actually differs, yet the
/// value stays finite — nothing downstream throws, and the total pair
/// count still conserves, which is exactly what makes this fault invisible
/// to the invariant layer and detectable only by a cross-backend audit.
void corrupt_staged(PointsSoA& pts) {
  std::span<float> xs = pts.x();
  float& v = xs[pts.size() / 2];
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  bits ^= (std::uint32_t{1} << 22);
  std::memcpy(&v, &bits, sizeof bits);
}

/// Silent result corruption: flip the low bit of the first histogram
/// bucket (or of the pair count). This breaks total-count conservation by
/// exactly one, so the invariant layer can catch it without re-execution.
void corrupt_result(kernels::KernelOutput& out) {
  if (out.hist != nullptr && out.hist->bucket_count() > 0)
    out.hist->set_count(0, (*out.hist)[0] ^ std::uint64_t{1});
  else if (out.pairs != nullptr)
    *out.pairs ^= std::uint64_t{1};
}

}  // namespace

VgpuBackend::VgpuBackend(vgpu::Device& dev)
    : owned_(std::in_place, dev),
      stream_(&*owned_),
      caps_(caps_for(dev.spec())) {}

VgpuBackend::VgpuBackend(vgpu::Stream& stream)
    : stream_(&stream), caps_(caps_for(stream.device().spec())) {}

bool VgpuBackend::can_launch(const kernels::KernelVariant& v,
                             const kernels::ProblemDesc& desc,
                             int block_size) const {
  if (!v.supports(kernels::kBackendVgpu)) return false;
  return v.shared_bytes(block_size, desc.buckets) <=
         caps_.shared_mem_per_block_cap;
}

std::size_t VgpuBackend::stage(const PointsSoA& pts) {
  // The kernels own their working-set staging; this round-trip allocates a
  // device buffer per coordinate lane so the transfer is accounted (and the
  // allocator's alignment path exercised) without double-owning the data.
  const std::size_t bytes = 3 * pts.size() * sizeof(float);
  vgpu::DeviceBuffer<float> x(pts.x());
  vgpu::DeviceBuffer<float> y(pts.y());
  vgpu::DeviceBuffer<float> z(pts.z());
  bytes_staged_.fetch_add(bytes, std::memory_order_relaxed);
  return bytes;
}

vgpu::KernelStats VgpuBackend::launch(const kernels::KernelVariant& v,
                                      const PointsSoA& pts,
                                      const kernels::ProblemDesc& desc,
                                      int block_size,
                                      kernels::KernelOutput& out) {
  check(v.launch != nullptr,
        "VgpuBackend: variant has no vgpu launch functor");
  const vgpu::SilentFault silent = next_silent(stream_->device());
  try {
    vgpu::KernelStats stats;
    if (silent == vgpu::SilentFault::Staged && !pts.empty()) {
      PointsSoA poisoned = pts;
      corrupt_staged(poisoned);
      stats = v.launch(*stream_, poisoned, desc, block_size, out);
    } else {
      stats = v.launch(*stream_, pts, desc, block_size, out);
    }
    if (silent == vgpu::SilentFault::Result) corrupt_result(out);
    launches_.fetch_add(1, std::memory_order_relaxed);
    return stats;
  } catch (const vgpu::DeviceError&) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    throw;
  }
}

vgpu::KernelStats VgpuBackend::launch_cross(const PointsSoA& anchors,
                                            const PointsSoA& partners,
                                            const kernels::ProblemDesc& desc,
                                            int block_size,
                                            kernels::KernelOutput& out) {
  const vgpu::SilentFault silent = next_silent(stream_->device());
  const PointsSoA* a = &anchors;
  PointsSoA poisoned;
  if (silent == vgpu::SilentFault::Staged && !anchors.empty()) {
    poisoned = anchors;
    corrupt_staged(poisoned);
    a = &poisoned;
  }
  try {
    vgpu::KernelStats stats;
    if (desc.type == kernels::ProblemType::Sdh) {
      kernels::SdhResult r =
          kernels::run_sdh_cross(*stream_, *a, partners,
                                 desc.bucket_width, desc.buckets, block_size);
      if (out.hist != nullptr) *out.hist = std::move(r.hist);
      stats = r.stats;
    } else {
      kernels::PcfResult r = kernels::run_pcf_cross(
          *stream_, *a, partners, desc.radius, block_size);
      if (out.pairs != nullptr) *out.pairs = r.pairs_within;
      stats = r.stats;
    }
    if (silent == vgpu::SilentFault::Result) corrupt_result(out);
    launches_.fetch_add(1, std::memory_order_relaxed);
    return stats;
  } catch (const vgpu::DeviceError&) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    throw;
  }
}

Estimate VgpuBackend::estimate(const kernels::KernelVariant& v,
                               const PointsSoA& sample,
                               const kernels::ProblemDesc& desc,
                               int block_size, double target_n) {
  std::array<vgpu::KernelStats, 3> stats;
  for (std::size_t i = 0; i < kCalibN.size(); ++i) {
    const PointsSoA pts = take(sample, static_cast<std::size_t>(kCalibN[i]));
    kernels::KernelOutput sink;  // calibration discards outputs
    stats[i] = launch(v, pts, desc, block_size, sink);
  }
  const perfmodel::StatsPoly poly(kCalibN, stats);
  const auto report =
      perfmodel::model_time(stream_->device().spec(), poly.predict(target_n));
  return Estimate{report.seconds, report.bottleneck};
}

Counters VgpuBackend::counters() const {
  Counters c;
  c.launches = launches_.load(std::memory_order_relaxed);
  c.faults = faults_.load(std::memory_order_relaxed);
  c.bytes_staged = bytes_staged_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace tbs::backend
