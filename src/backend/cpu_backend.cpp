#include "backend/cpu_backend.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>

#include "common/datagen.hpp"
#include "common/error.hpp"
#include "cpubase/tree_sdh.hpp"

namespace tbs::backend {

namespace {

/// Same calibration grid as the vgpu side, so the two models extrapolate
/// from comparable regimes.
constexpr std::array<double, 3> kCalibN = {512, 1024, 2048};

/// Timed-calibration size: big enough (~8.4M pairs) that pool fan-out
/// overhead is amortized out of the measured per-pair cost.
constexpr std::size_t kPairCalibN = 4096;

/// One node-pair visit costs roughly this many pair evaluations (AABB
/// min/max distance + two bucket probes).
constexpr double kNodeVisitWeight = 4.0;

PointsSoA take(const PointsSoA& sample, std::size_t n) {
  check(!sample.empty(), "CpuBackend::estimate: empty sample");
  PointsSoA out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(sample[i % sample.size()]);
  return out;
}

double pairs_of(double n) { return n * (n - 1.0) / 2.0; }

}  // namespace

CpuBackend::CpuBackend() : CpuBackend(Config{}) {}

CpuBackend::CpuBackend(Config cfg)
    : cfg_(cfg), pool_(cfg.threads), pair_cost_(cfg.pair_cost_seconds) {
  caps_.kind = Kind::Cpu;
  caps_.name = "cpu:" + std::to_string(pool_.size()) + "w";
  caps_.registry_mask = kernels::kBackendCpu;
  caps_.parallel_units = static_cast<int>(pool_.size());
  caps_.shared_mem_per_block_cap = 0;  // not applicable
}

bool CpuBackend::can_launch(const kernels::KernelVariant& v,
                            const kernels::ProblemDesc& /*desc*/,
                            int /*block_size*/) const {
  return v.supports(kernels::kBackendCpu);
}

std::size_t CpuBackend::stage(const PointsSoA& pts) {
  // Host data is already where the loops read it; the "upload" is a cache
  // warm over the three lanes, accounted like a transfer.
  const std::size_t bytes = 3 * pts.size() * sizeof(float);
  float sink = 0.0f;
  for (const float v : pts.x()) sink += v;
  for (const float v : pts.y()) sink += v;
  for (const float v : pts.z()) sink += v;
  // The sum only exists to keep the walk from being optimized away.
  if (std::isnan(sink)) check(false, "CpuBackend::stage: NaN coordinates");
  bytes_staged_.fetch_add(bytes, std::memory_order_relaxed);
  return bytes;
}

vgpu::KernelStats CpuBackend::launch(const kernels::KernelVariant& v,
                                     const PointsSoA& pts,
                                     const kernels::ProblemDesc& desc,
                                     int block_size,
                                     kernels::KernelOutput& out) {
  check(v.launch_cpu != nullptr,
        "CpuBackend: variant has no CPU launch functor");
  vgpu::KernelStats stats =
      v.launch_cpu(pool_, cfg_.cpu, pts, desc, block_size, out);
  launches_.fetch_add(1, std::memory_order_relaxed);
  return stats;
}

vgpu::KernelStats CpuBackend::launch_cross(const PointsSoA& anchors,
                                           const PointsSoA& partners,
                                           const kernels::ProblemDesc& desc,
                                           int block_size,
                                           kernels::KernelOutput& out) {
  if (desc.type == kernels::ProblemType::Sdh) {
    Histogram h = cpubase::cpu_sdh_cross(
        pool_, anchors, partners, desc.bucket_width,
        static_cast<std::size_t>(desc.buckets), cfg_.cpu);
    if (out.hist != nullptr) *out.hist = std::move(h);
  } else {
    const std::uint64_t pairs =
        cpubase::cpu_pcf_cross(pool_, anchors, partners, desc.radius,
                               cfg_.cpu);
    if (out.pairs != nullptr) *out.pairs = pairs;
  }
  launches_.fetch_add(1, std::memory_order_relaxed);
  // Host-side facts only, same shape as the registry's CPU launches: the
  // simulated counters stay zero so obs::check_drift skips these stats.
  vgpu::KernelStats stats;
  stats.launches = 1;
  stats.block_dim = block_size;
  return stats;
}

double CpuBackend::pair_cost() {
  // Invariant: every read of pair_cost_ happens under calib_mu_, and the
  // value published is always strictly positive — a concurrent estimate()
  // during first-use calibration either runs the calibration itself or
  // blocks here and then reads the finished value; it can never observe a
  // torn or zero cost.
  const std::lock_guard<std::mutex> lock(calib_mu_);
  if (pair_cost_ > 0.0) return pair_cost_;
  // One timed run of the tiled SDH loop on synthetic data; the histogram
  // geometry is irrelevant to the per-pair cost.
  const PointsSoA pts = uniform_box(kPairCalibN, 10.0f, /*seed=*/42);
  const double width = pts.max_possible_distance() / 64 + 1e-4;
  const auto t0 = std::chrono::steady_clock::now();
  (void)cpubase::cpu_sdh_tiled(pool_, pts, width, 64, cfg_.cpu);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // A coarse steady_clock can measure the run as 0s; clamping keeps the
  // published cost positive so the "calibrated" state is unambiguous and
  // estimates never price all candidates at zero.
  pair_cost_ = std::max(1e-12, seconds * static_cast<double>(pool_.size()) /
                                   pairs_of(static_cast<double>(kPairCalibN)));
  return pair_cost_;
}

Estimate CpuBackend::estimate(const kernels::KernelVariant& v,
                              const PointsSoA& sample,
                              const kernels::ProblemDesc& desc,
                              int /*block_size*/, double target_n) {
  const double cost = pair_cost();

  if (v.name == "Tree-SDH") {
    // The tree's work is deterministic for a given point set: count it at
    // the calibration sizes and fit work ≈ a·N^b in log-log space, then
    // price the extrapolated work at per-pair cost, single-threaded.
    std::array<double, 3> log_n{};
    std::array<double, 3> log_w{};
    for (std::size_t i = 0; i < kCalibN.size(); ++i) {
      const PointsSoA pts =
          take(sample, static_cast<std::size_t>(kCalibN[i]));
      cpubase::TreeSdhStats stats;
      (void)cpubase::tree_sdh(pts, desc.bucket_width,
                              static_cast<std::size_t>(desc.buckets),
                              /*leaf_size=*/32, &stats);
      const double work =
          static_cast<double>(stats.brute_pairs) +
          kNodeVisitWeight * static_cast<double>(stats.node_pair_visits);
      log_n[i] = std::log(kCalibN[i]);
      log_w[i] = std::log(std::max(1.0, work));
    }
    // Least-squares line through three points.
    const double mean_n = (log_n[0] + log_n[1] + log_n[2]) / 3.0;
    const double mean_w = (log_w[0] + log_w[1] + log_w[2]) / 3.0;
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      num += (log_n[i] - mean_n) * (log_w[i] - mean_w);
      den += (log_n[i] - mean_n) * (log_n[i] - mean_n);
    }
    const double b = den > 0.0 ? num / den : 2.0;
    const double log_a = mean_w - b * mean_n;
    const double work = std::exp(log_a + b * std::log(target_n));
    return Estimate{work * cost + cfg_.launch_overhead_seconds, "cpu-tree"};
  }

  // Quadratic variants: every CPU pair loop has the same shape, so one
  // model covers them all.
  const double seconds =
      pairs_of(target_n) * cost / static_cast<double>(pool_.size()) +
      cfg_.launch_overhead_seconds;
  return Estimate{seconds, "cpu-pairs"};
}

Counters CpuBackend::counters() const {
  Counters c;
  c.launches = launches_.load(std::memory_order_relaxed);
  c.bytes_staged = bytes_staged_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace tbs::backend
