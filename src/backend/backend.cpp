#include "backend/backend.hpp"

namespace tbs::backend {

const char* to_string(Kind k) {
  switch (k) {
    case Kind::Vgpu: return "vgpu";
    case Kind::Cpu: return "cpu";
  }
  return "?";
}

}  // namespace tbs::backend
