// VgpuBackend — the simulated-GPU substrate behind the IBackend seam.
//
// A thin adapter: launches go through a vgpu::Stream exactly as before the
// seam existed, so everything attached to the Device — fault injection
// plans, launch observers, the launch counter — keeps working untouched.
// Two construction modes:
//   * VgpuBackend(Device&): the backend owns a private stream on the
//     device (a serve worker's lane).
//   * VgpuBackend(Stream&): borrow the caller's stream — used by the
//     planner's legacy Stream-based entry point so calibration launches
//     stay on the caller's lane.
#pragma once

#include <atomic>
#include <optional>

#include "backend/backend.hpp"
#include "vgpu/device.hpp"
#include "vgpu/stream.hpp"

namespace tbs::backend {

class VgpuBackend final : public IBackend {
 public:
  explicit VgpuBackend(vgpu::Device& dev);
  explicit VgpuBackend(vgpu::Stream& stream);

  [[nodiscard]] const Capabilities& caps() const override { return caps_; }

  [[nodiscard]] bool can_launch(const kernels::KernelVariant& v,
                                const kernels::ProblemDesc& desc,
                                int block_size) const override;

  std::size_t stage(const PointsSoA& pts) override;

  vgpu::KernelStats launch(const kernels::KernelVariant& v,
                           const PointsSoA& pts,
                           const kernels::ProblemDesc& desc, int block_size,
                           kernels::KernelOutput& out) override;

  vgpu::KernelStats launch_cross(const PointsSoA& anchors,
                                 const PointsSoA& partners,
                                 const kernels::ProblemDesc& desc,
                                 int block_size,
                                 kernels::KernelOutput& out) override;

  /// Eqs. 2–7 pricing: three calibration launches, StatsPoly counter
  /// extrapolation, perfmodel::model_time on the device spec.
  [[nodiscard]] Estimate estimate(const kernels::KernelVariant& v,
                                  const PointsSoA& sample,
                                  const kernels::ProblemDesc& desc,
                                  int block_size, double target_n) override;

  [[nodiscard]] Counters counters() const override;

  [[nodiscard]] vgpu::Device& device() noexcept { return stream_->device(); }
  [[nodiscard]] vgpu::Stream& stream() noexcept { return *stream_; }

 private:
  std::optional<vgpu::Stream> owned_;  ///< set only for the Device ctor
  vgpu::Stream* stream_;               ///< never null
  Capabilities caps_;
  std::atomic<std::uint64_t> launches_{0};
  std::atomic<std::uint64_t> faults_{0};
  std::atomic<std::uint64_t> bytes_staged_{0};
};

}  // namespace tbs::backend
