// CpuBackend — the multi-core host substrate behind the IBackend seam.
//
// Promotes src/cpubase from "test oracle" to first-class execution peer:
// launches run the tiled SDH/PCF loops (or the sub-quadratic tree path)
// over an owned thread pool, bit-identical to the vgpu kernels because
// every implementation buckets through the same double-precision division.
//
// Cost model (estimate()): the backend calibrates a per-pair cost from one
// timed run of the tiled SDH loop, then prices
//   * quadratic variants as  pairs(N) · pair_cost / threads + overhead
//   * Tree-SDH by fitting a power law to the tree's deterministic work
//     counters (brute pairs + weighted node-pair visits) at the standard
//     calibration sizes, priced single-threaded (the tree walk is
//     sequential) + overhead.
// vgpu estimates are simulated-device seconds while CPU estimates are
// host-clock seconds; the planner compares them directly, which is exactly
// the paper's GPU-vs-CPU framing (model time vs measured baseline).
#pragma once

#include <atomic>
#include <mutex>

#include "backend/backend.hpp"
#include "cpubase/cpu_stats.hpp"
#include "cpubase/thread_pool.hpp"

namespace tbs::backend {

class CpuBackend final : public IBackend {
 public:
  struct Config {
    /// Worker threads; 0 = std::thread::hardware_concurrency().
    unsigned threads = 0;
    cpubase::CpuConfig cpu{};
    /// Fixed per-launch overhead floor (pool fan-out, tree build) added to
    /// every estimate so tiny-N placements don't flip on noise.
    double launch_overhead_seconds = 50e-6;
    /// Per-pair seconds for estimate(); 0 = calibrate from a timed run on
    /// first use. Tests pin this for deterministic placement regimes.
    double pair_cost_seconds = 0.0;
  };

  CpuBackend();  ///< default Config (delegating; GCC rejects `= {}` here)
  explicit CpuBackend(Config cfg);

  [[nodiscard]] const Capabilities& caps() const override { return caps_; }

  [[nodiscard]] bool can_launch(const kernels::KernelVariant& v,
                                const kernels::ProblemDesc& desc,
                                int block_size) const override;

  std::size_t stage(const PointsSoA& pts) override;

  vgpu::KernelStats launch(const kernels::KernelVariant& v,
                           const PointsSoA& pts,
                           const kernels::ProblemDesc& desc, int block_size,
                           kernels::KernelOutput& out) override;

  vgpu::KernelStats launch_cross(const PointsSoA& anchors,
                                 const PointsSoA& partners,
                                 const kernels::ProblemDesc& desc,
                                 int block_size,
                                 kernels::KernelOutput& out) override;

  [[nodiscard]] Estimate estimate(const kernels::KernelVariant& v,
                                  const PointsSoA& sample,
                                  const kernels::ProblemDesc& desc,
                                  int block_size, double target_n) override;

  [[nodiscard]] Counters counters() const override;

  [[nodiscard]] cpubase::ThreadPool& pool() noexcept { return pool_; }

 private:
  /// Calibrated (or configured) per-pair cost, in seconds per core.
  double pair_cost();

  Config cfg_;
  cpubase::ThreadPool pool_;
  Capabilities caps_;
  std::mutex calib_mu_;      ///< guards pair_cost_ first-use calibration
  double pair_cost_ = 0.0;   ///< 0 until calibrated
  std::atomic<std::uint64_t> launches_{0};
  std::atomic<std::uint64_t> bytes_staged_{0};
};

}  // namespace tbs::backend
