#include "core/feedback.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace tbs::core {

namespace json = tbs::obs::json;

std::uint64_t estimate_n_bucket(double n) {
  std::uint64_t bucket = 1;
  while (static_cast<double>(bucket) < n) bucket <<= 1;
  return bucket;
}

EstimateCorrector::EstimateCorrector(Config cfg) : cfg_(cfg) {
  check(cfg_.alpha > 0.0 && cfg_.alpha <= 1.0,
        "EstimateCorrector: alpha must be in (0, 1]");
  check(cfg_.min_factor > 0.0 && cfg_.min_factor <= cfg_.max_factor,
        "EstimateCorrector: need 0 < min_factor <= max_factor");
}

std::string EstimateCorrector::key_of(std::string_view backend,
                                      std::string_view variant,
                                      std::uint64_t n_bucket) {
  std::string key(backend);
  key += '|';
  key += variant;
  key += "|N";
  key += std::to_string(n_bucket);
  return key;
}

double EstimateCorrector::clamped_factor(const Entry& e) const {
  if (e.samples < cfg_.min_samples) return 1.0;
  return std::clamp(e.ewma_ratio, cfg_.min_factor, cfg_.max_factor);
}

void EstimateCorrector::observe(std::string_view backend,
                                std::string_view variant, double target_n,
                                double estimated_raw, double measured) {
  if (!(estimated_raw > 0.0) || !(measured > 0.0)) return;
  const std::string key =
      key_of(backend, variant, estimate_n_bucket(target_n));
  const double ratio = measured / estimated_raw;
  const double err_raw = std::abs(estimated_raw - measured) / measured;

  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[key];
  // Error of the correction *as applied*: the factor in force before this
  // observation is what plan() actually multiplied by.
  const double applied = clamped_factor(e);
  const double err_corr =
      std::abs(estimated_raw * applied - measured) / measured;
  e.sum_err_uncorrected += err_raw;
  e.sum_err_corrected += err_corr;
  e.recent_err_corrected =
      e.samples == 0
          ? err_corr
          : (1.0 - cfg_.alpha) * e.recent_err_corrected + cfg_.alpha * err_corr;
  e.ewma_ratio = e.samples == 0
                     ? ratio
                     : (1.0 - cfg_.alpha) * e.ewma_ratio + cfg_.alpha * ratio;
  ++e.samples;
  obs::MetricsRegistry::global().counter("planner.estimate.observations").inc();
}

double EstimateCorrector::factor(std::string_view backend,
                                 std::string_view variant,
                                 double target_n) const {
  const std::string key =
      key_of(backend, variant, estimate_n_bucket(target_n));
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return 1.0;
  return clamped_factor(it->second);
}

EstimateCorrector::Stats EstimateCorrector::stats(std::string_view backend,
                                                  std::string_view variant,
                                                  double target_n) const {
  const std::string key =
      key_of(backend, variant, estimate_n_bucket(target_n));
  Stats out;
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return out;
  const Entry& e = it->second;
  out.samples = e.samples;
  out.factor = clamped_factor(e);
  out.mae_uncorrected =
      e.samples == 0 ? 0.0
                     : e.sum_err_uncorrected / static_cast<double>(e.samples);
  out.mae_corrected =
      e.samples == 0 ? 0.0
                     : e.sum_err_corrected / static_cast<double>(e.samples);
  out.recent_err_corrected = e.recent_err_corrected;
  return out;
}

EstimateCorrector::Stats EstimateCorrector::overall() const {
  Stats out;
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t hottest = 0;
  double sum_raw = 0.0;
  double sum_corr = 0.0;
  double recent_weighted = 0.0;
  for (const auto& [key, e] : entries_) {
    out.samples += e.samples;
    sum_raw += e.sum_err_uncorrected;
    sum_corr += e.sum_err_corrected;
    recent_weighted +=
        e.recent_err_corrected * static_cast<double>(e.samples);
    if (e.samples > hottest) {
      hottest = e.samples;
      out.factor = clamped_factor(e);
    }
  }
  if (out.samples > 0) {
    out.mae_uncorrected = sum_raw / static_cast<double>(out.samples);
    out.mae_corrected = sum_corr / static_cast<double>(out.samples);
    out.recent_err_corrected =
        recent_weighted / static_cast<double>(out.samples);
  }
  return out;
}

std::uint64_t EstimateCorrector::keys() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t EstimateCorrector::observations() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [key, e] : entries_) total += e.samples;
  return total;
}

void EstimateCorrector::enforce(double tolerance) const {
  check(tolerance > 0.0, "EstimateCorrector::enforce: tolerance must be > 0");
  std::string worst_key;
  double worst_err = 0.0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, e] : entries_) {
      if (e.samples < cfg_.min_samples) continue;
      if (e.recent_err_corrected > worst_err) {
        worst_err = e.recent_err_corrected;
        worst_key = key;
      }
    }
  }
  check(worst_err <= tolerance,
        "EstimateCorrector: corrected estimate error " +
            std::to_string(worst_err) + " exceeds tolerance " +
            std::to_string(tolerance) + " for key " + worst_key);
}

std::string EstimateCorrector::json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [key, e] : entries_) total += e.samples;
  std::string out = "{\"keys\": " + std::to_string(entries_.size()) +
                    ", \"observations\": " + std::to_string(total) +
                    ", \"entries\": {";
  bool first = true;
  for (const auto& [key, e] : entries_) {
    if (!first) out += ", ";
    first = false;
    const double n = std::max<double>(1.0, static_cast<double>(e.samples));
    out += "\"" + json::escape(key) + "\": {\"samples\": " +
           std::to_string(e.samples) +
           ", \"factor\": " + json::number(clamped_factor(e)) +
           ", \"mae_uncorrected\": " + json::number(e.sum_err_uncorrected / n) +
           ", \"mae_corrected\": " + json::number(e.sum_err_corrected / n) +
           ", \"recent_err_corrected\": " +
           json::number(e.recent_err_corrected) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace tbs::core
