#include "core/planner.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <utility>

#include "backend/vgpu_backend.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tbs::core {

namespace {

/// Block sizes explored per vgpu candidate. CPU launches have no block
/// geometry, so CPU candidates are priced once at the conventional 256.
constexpr std::array<int, 3> kBlockSizes = {128, 256, 512};
constexpr std::array<int, 1> kCpuBlockSizes = {256};

/// Price one (backend, variant, block) candidate through the backend's own
/// cost model.
Candidate price(backend::IBackend& be, const PointsSoA& sample,
                const kernels::KernelVariant& kernel,
                const kernels::ProblemDesc& desc, int block_size,
                double target_n) {
  check(!sample.empty(), "planner: empty sample");
  const backend::Estimate est =
      be.estimate(kernel, sample, desc, block_size, target_n);
  Candidate c;
  c.name = kernel.name + "/B" + std::to_string(block_size);
  c.predicted_seconds = est.seconds;
  c.bottleneck = est.bottleneck;
  c.backend = be.caps().name;
  c.raw_seconds = est.seconds;
  c.kernel = &kernel;
  c.block_size = block_size;
  c.kind = be.caps().kind;
  return c;
}

/// Re-price every candidate from its stored raw estimate with the
/// corrector's current factors and rebind the plan to the cheapest
/// corrected candidate. A no-op without a corrector, and on plans whose
/// candidates predate the raw-estimate fields.
void apply_correction(Plan& p, const EstimateCorrector* corrector,
                      double target_n) {
  if (corrector == nullptr || p.considered.empty()) return;
  const Candidate* winner = nullptr;
  for (Candidate& c : p.considered) {
    if (c.kernel == nullptr || !(c.raw_seconds > 0.0)) return;
    c.predicted_seconds =
        c.raw_seconds * corrector->factor(c.backend, c.name, target_n);
    if (winner == nullptr || c.predicted_seconds < winner->predicted_seconds)
      winner = &c;
  }
  const bool changed = winner->kernel != p.kernel ||
                       winner->block_size != p.block_size ||
                       winner->backend != p.backend_name;
  p.kernel = winner->kernel;
  p.block_size = winner->block_size;
  p.predicted_seconds = winner->predicted_seconds;
  p.backend = winner->kind;
  p.backend_name = winner->backend;
  p.raw_predicted_seconds = winner->raw_seconds;
  p.variant_key = winner->name;
  if (changed)
    obs::MetricsRegistry::global().counter("planner.estimate.reranks").inc();
}

}  // namespace

std::string plan_cache_key(const vgpu::DeviceSpec& spec,
                           const kernels::ProblemDesc& desc,
                           double target_n) {
  // Round the target up to a power of two so nearby sizes share a plan.
  std::uint64_t n_bucket = 1;
  while (static_cast<double>(n_bucket) < target_n) n_bucket <<= 1;

  std::string key = spec.name;
  key += '|';
  key += std::to_string(spec.sm_count);
  key += '|';
  key += std::to_string(spec.shared_mem_per_block_cap);
  key += '|';
  key += kernels::to_string(desc.type);
  key += '|';
  key += std::to_string(desc.bucket_width);
  key += '|';
  key += std::to_string(desc.buckets);
  key += '|';
  key += std::to_string(desc.radius);
  key += "|N";
  key += std::to_string(n_bucket);
  return key;
}

std::string plan_cache_key(std::span<backend::IBackend* const> backends,
                           const kernels::ProblemDesc& desc,
                           double target_n) {
  std::uint64_t n_bucket = 1;
  while (static_cast<double>(n_bucket) < target_n) n_bucket <<= 1;

  std::string key;
  for (const backend::IBackend* be : backends) {
    const backend::Capabilities& caps = be->caps();
    key += caps.name;
    key += '/';
    key += std::to_string(caps.parallel_units);
    key += '/';
    key += std::to_string(caps.shared_mem_per_block_cap);
    key += '+';
  }
  key += '|';
  key += kernels::to_string(desc.type);
  key += '|';
  key += std::to_string(desc.bucket_width);
  key += '|';
  key += std::to_string(desc.buckets);
  key += '|';
  key += std::to_string(desc.radius);
  key += "|N";
  key += std::to_string(n_bucket);
  return key;
}

std::optional<Plan> PlanCache::find(const std::string& key) const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = plans_.find(key);
  if (it == plans_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

std::optional<Plan> PlanCache::peek(const std::string& key) const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = plans_.find(key);
  if (it == plans_.end()) return std::nullopt;
  return it->second;
}

void PlanCache::store(const std::string& key, const Plan& plan) {
  const std::unique_lock<std::shared_mutex> lock(mu_);
  plans_[key] = plan;
}

std::shared_ptr<std::mutex> PlanCache::calibration_gate(
    const std::string& key) {
  const std::unique_lock<std::shared_mutex> lock(mu_);
  std::shared_ptr<std::mutex>& gate = gates_[key];
  if (gate == nullptr) gate = std::make_shared<std::mutex>();
  return gate;
}

std::uint64_t PlanCache::hits() const {
  return hits_.load(std::memory_order_relaxed);
}

std::uint64_t PlanCache::misses() const {
  return misses_.load(std::memory_order_relaxed);
}

std::size_t PlanCache::size() const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  return plans_.size();
}

namespace {

/// The calibration round itself: for every backend in the set, enumerate
/// the registry variants it supports, price every launchable (backend,
/// variant, block size) triple through the backend's own cost model, pick
/// the cheapest.
Plan calibrate_plan(std::span<backend::IBackend* const> backends,
                    const PointsSoA& sample,
                    const kernels::ProblemDesc& desc, double target_n) {
  check(!backends.empty(), "plan: empty backend set");
  Plan out;
  out.predicted_seconds = std::numeric_limits<double>::infinity();

  for (backend::IBackend* be : backends) {
    const auto candidates = kernels::KernelRegistry::instance().plannable(
        desc.type, be->caps().registry_mask);
    const std::span<const int> blocks =
        be->caps().kind == backend::Kind::Vgpu
            ? std::span<const int>(kBlockSizes)
            : std::span<const int>(kCpuBlockSizes);
    for (const kernels::KernelVariant* kernel : candidates) {
      for (const int b : blocks) {
        // Skip configurations the backend cannot launch (shared-memory
        // demand over the device cap, unsupported substrate).
        if (!be->can_launch(*kernel, desc, b)) continue;
        Candidate c = price(*be, sample, *kernel, desc, b, target_n);
        if (c.predicted_seconds < out.predicted_seconds) {
          out.predicted_seconds = c.predicted_seconds;
          out.kernel = kernel;
          out.block_size = b;
          out.backend = be->caps().kind;
          out.backend_name = be->caps().name;
          out.raw_predicted_seconds = c.raw_seconds;
          out.variant_key = c.name;
        }
        out.considered.push_back(std::move(c));
      }
    }
  }
  check(!out.considered.empty(), "plan: no launchable candidate");
  return out;
}

/// Calibrate with a span + counter around the round (planner counters live
/// in the process-wide registry: the planner is a free function shared by
/// every engine, framework, and bench in the process).
Plan traced_calibrate(std::span<backend::IBackend* const> backends,
                      const PointsSoA& sample,
                      const kernels::ProblemDesc& desc, double target_n,
                      const std::string& key,
                      const EstimateCorrector* corrector) {
  obs::MetricsRegistry::global().counter("core.plan.calibrations").inc();
  obs::Span span("core.plan.calibrate", "core");
  if (!key.empty()) span.attr("key", key);
  Plan out = calibrate_plan(backends, sample, desc, target_n);
  apply_correction(out, corrector, target_n);
  span.attr("candidates", static_cast<std::uint64_t>(out.considered.size()));
  span.attr("winner", out.kernel->name);
  span.attr("backend", out.backend_name);
  span.attr("predicted_seconds", out.predicted_seconds);
  return out;
}

/// Shared cache + single-flight wrapper around traced_calibrate. The key
/// is supplied by the caller so the legacy Stream path keeps its
/// spec-based key scheme.
Plan plan_impl(std::span<backend::IBackend* const> backends,
               const PointsSoA& sample, const kernels::ProblemDesc& desc,
               double target_n, PlanCache* cache, const std::string& key,
               const EstimateCorrector* corrector) {
  obs::MetricsRegistry::global().counter("core.plan.calls").inc();
  obs::Span span("core.plan", "core");

  if (cache == nullptr) {
    span.attr("outcome", "calibrated");
    return traced_calibrate(backends, sample, desc, target_n, std::string(),
                            corrector);
  }

  span.attr("key", key);
  if (std::optional<Plan> hit = cache->find(key)) {
    obs::MetricsRegistry::global().counter("core.plan.cache_hits").inc();
    span.attr("outcome", "cache_hit");
    // A hit costs zero launches but still gets today's factors: re-rank
    // the memoized candidates from their stored raw estimates.
    apply_correction(*hit, corrector, target_n);
    return *std::move(hit);
  }

  // Single-flight: hold the key's gate across calibration so concurrent
  // misses run one round between them. The loser double-checks under the
  // gate (peek, so the stats stay one-miss-per-client-lookup) and returns
  // the winner's plan without a single launch of its own.
  const std::shared_ptr<std::mutex> gate = cache->calibration_gate(key);
  std::unique_lock<std::mutex> in_flight(*gate, std::defer_lock);
  {
    obs::Span gate_span("core.plan.gate_wait", "core");
    in_flight.lock();
  }
  if (std::optional<Plan> raced = cache->peek(key)) {
    obs::MetricsRegistry::global()
        .counter("core.plan.single_flight_waits")
        .inc();
    span.attr("outcome", "single_flight");
    apply_correction(*raced, corrector, target_n);
    return *std::move(raced);
  }

  span.attr("outcome", "calibrated");
  Plan out =
      traced_calibrate(backends, sample, desc, target_n, key, corrector);
  cache->store(key, out);
  return out;
}

}  // namespace

Plan plan(std::span<backend::IBackend* const> backends,
          const PointsSoA& sample, const kernels::ProblemDesc& desc,
          double target_n, PlanCache* cache,
          const EstimateCorrector* corrector) {
  const std::string key =
      cache != nullptr ? plan_cache_key(backends, desc, target_n)
                       : std::string();
  return plan_impl(backends, sample, desc, target_n, cache, key, corrector);
}

Plan plan(vgpu::Stream& stream, const PointsSoA& sample,
          const kernels::ProblemDesc& desc, double target_n,
          PlanCache* cache) {
  backend::VgpuBackend view(stream);
  backend::IBackend* one[] = {&view};
  const std::string key =
      cache != nullptr
          ? plan_cache_key(stream.device().spec(), desc, target_n)
          : std::string();
  return plan_impl(one, sample, desc, target_n, cache, key, nullptr);
}

SdhPlan plan_sdh(vgpu::Device& dev, const PointsSoA& sample,
                 double bucket_width, int buckets, double target_n) {
  vgpu::Stream stream(dev);
  Plan g = plan(stream, sample,
                kernels::ProblemDesc::sdh(bucket_width, buckets), target_n);
  SdhPlan out;
  out.variant = static_cast<kernels::SdhVariant>(g.kernel->variant_id);
  out.block_size = g.block_size;
  out.predicted_seconds = g.predicted_seconds;
  out.considered = std::move(g.considered);
  return out;
}

PcfPlan plan_pcf(vgpu::Device& dev, const PointsSoA& sample, double radius,
                 double target_n) {
  vgpu::Stream stream(dev);
  Plan g = plan(stream, sample, kernels::ProblemDesc::pcf(radius), target_n);
  PcfPlan out;
  out.variant = static_cast<kernels::PcfVariant>(g.kernel->variant_id);
  out.block_size = g.block_size;
  out.predicted_seconds = g.predicted_seconds;
  out.considered = std::move(g.considered);
  return out;
}

}  // namespace tbs::core
