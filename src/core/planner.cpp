#include "core/planner.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perfmodel/counts.hpp"
#include "perfmodel/timemodel.hpp"

namespace tbs::core {

namespace {

/// Calibration sizes (multiples of every candidate block size).
constexpr std::array<double, 3> kCalibN = {512, 1024, 2048};

constexpr std::array<int, 3> kBlockSizes = {128, 256, 512};

/// Truncate the sample to n points (cycling if the sample is smaller).
PointsSoA take(const PointsSoA& sample, std::size_t n) {
  check(!sample.empty(), "planner: empty sample");
  PointsSoA out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(sample[i % sample.size()]);
  return out;
}

/// Simulate at the three calibration sizes and price at target_n.
Candidate price(vgpu::Stream& stream, const PointsSoA& sample,
                const kernels::KernelVariant& kernel,
                const kernels::ProblemDesc& desc, int block_size,
                double target_n) {
  std::array<vgpu::KernelStats, 3> stats;
  for (std::size_t i = 0; i < kCalibN.size(); ++i) {
    const PointsSoA pts =
        take(sample, static_cast<std::size_t>(kCalibN[i]));
    kernels::KernelOutput sink;  // calibration discards outputs
    stats[i] = kernel.launch(stream, pts, desc, block_size, sink);
  }
  const perfmodel::StatsPoly poly(kCalibN, stats);
  const auto report =
      perfmodel::model_time(stream.device().spec(), poly.predict(target_n));
  const std::string name =
      kernel.name + "/B" + std::to_string(block_size);
  return Candidate{name, report.seconds, report.bottleneck};
}

}  // namespace

std::string plan_cache_key(const vgpu::DeviceSpec& spec,
                           const kernels::ProblemDesc& desc,
                           double target_n) {
  // Round the target up to a power of two so nearby sizes share a plan.
  std::uint64_t n_bucket = 1;
  while (static_cast<double>(n_bucket) < target_n) n_bucket <<= 1;

  std::string key = spec.name;
  key += '|';
  key += std::to_string(spec.sm_count);
  key += '|';
  key += std::to_string(spec.shared_mem_per_block_cap);
  key += '|';
  key += kernels::to_string(desc.type);
  key += '|';
  key += std::to_string(desc.bucket_width);
  key += '|';
  key += std::to_string(desc.buckets);
  key += '|';
  key += std::to_string(desc.radius);
  key += "|N";
  key += std::to_string(n_bucket);
  return key;
}

std::optional<Plan> PlanCache::find(const std::string& key) const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = plans_.find(key);
  if (it == plans_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

std::optional<Plan> PlanCache::peek(const std::string& key) const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = plans_.find(key);
  if (it == plans_.end()) return std::nullopt;
  return it->second;
}

void PlanCache::store(const std::string& key, const Plan& plan) {
  const std::unique_lock<std::shared_mutex> lock(mu_);
  plans_[key] = plan;
}

std::shared_ptr<std::mutex> PlanCache::calibration_gate(
    const std::string& key) {
  const std::unique_lock<std::shared_mutex> lock(mu_);
  std::shared_ptr<std::mutex>& gate = gates_[key];
  if (gate == nullptr) gate = std::make_shared<std::mutex>();
  return gate;
}

std::uint64_t PlanCache::hits() const {
  return hits_.load(std::memory_order_relaxed);
}

std::uint64_t PlanCache::misses() const {
  return misses_.load(std::memory_order_relaxed);
}

std::size_t PlanCache::size() const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  return plans_.size();
}

namespace {

/// The calibration round itself: enumerate the registry, price every
/// launchable (variant, block size) pair, pick the cheapest.
Plan calibrate_plan(vgpu::Stream& stream, const PointsSoA& sample,
                    const kernels::ProblemDesc& desc, double target_n) {
  Plan out;
  out.predicted_seconds = std::numeric_limits<double>::infinity();

  const auto candidates =
      kernels::KernelRegistry::instance().plannable(desc.type);
  for (const kernels::KernelVariant* kernel : candidates) {
    for (const int b : kBlockSizes) {
      // Skip configurations whose shared demand cannot launch.
      if (kernel->shared_bytes(b, desc.buckets) >
          stream.device().spec().shared_mem_per_block_cap)
        continue;
      Candidate c = price(stream, sample, *kernel, desc, b, target_n);
      if (c.predicted_seconds < out.predicted_seconds) {
        out.predicted_seconds = c.predicted_seconds;
        out.kernel = kernel;
        out.block_size = b;
      }
      out.considered.push_back(std::move(c));
    }
  }
  check(!out.considered.empty(), "plan: no launchable candidate");
  return out;
}

}  // namespace

namespace {

/// Calibrate with a span + counter around the round (planner counters live
/// in the process-wide registry: the planner is a free function shared by
/// every engine, framework, and bench in the process).
Plan traced_calibrate(vgpu::Stream& stream, const PointsSoA& sample,
                      const kernels::ProblemDesc& desc, double target_n,
                      const std::string& key) {
  obs::MetricsRegistry::global().counter("core.plan.calibrations").inc();
  obs::Span span("core.plan.calibrate", "core");
  if (!key.empty()) span.attr("key", key);
  Plan out = calibrate_plan(stream, sample, desc, target_n);
  span.attr("candidates", static_cast<std::uint64_t>(out.considered.size()));
  span.attr("winner", out.kernel->name);
  span.attr("predicted_seconds", out.predicted_seconds);
  return out;
}

}  // namespace

Plan plan(vgpu::Stream& stream, const PointsSoA& sample,
          const kernels::ProblemDesc& desc, double target_n,
          PlanCache* cache) {
  obs::MetricsRegistry::global().counter("core.plan.calls").inc();
  obs::Span span("core.plan", "core");

  if (cache == nullptr) {
    span.attr("outcome", "calibrated");
    return traced_calibrate(stream, sample, desc, target_n, std::string());
  }

  const std::string key =
      plan_cache_key(stream.device().spec(), desc, target_n);
  span.attr("key", key);
  if (std::optional<Plan> hit = cache->find(key)) {
    obs::MetricsRegistry::global().counter("core.plan.cache_hits").inc();
    span.attr("outcome", "cache_hit");
    return *std::move(hit);
  }

  // Single-flight: hold the key's gate across calibration so concurrent
  // misses run one round between them. The loser double-checks under the
  // gate (peek, so the stats stay one-miss-per-client-lookup) and returns
  // the winner's plan without a single launch of its own.
  const std::shared_ptr<std::mutex> gate = cache->calibration_gate(key);
  std::unique_lock<std::mutex> in_flight(*gate, std::defer_lock);
  {
    obs::Span gate_span("core.plan.gate_wait", "core");
    in_flight.lock();
  }
  if (std::optional<Plan> raced = cache->peek(key)) {
    obs::MetricsRegistry::global()
        .counter("core.plan.single_flight_waits")
        .inc();
    span.attr("outcome", "single_flight");
    return *std::move(raced);
  }

  span.attr("outcome", "calibrated");
  Plan out = traced_calibrate(stream, sample, desc, target_n, key);
  cache->store(key, out);
  return out;
}

SdhPlan plan_sdh(vgpu::Device& dev, const PointsSoA& sample,
                 double bucket_width, int buckets, double target_n) {
  vgpu::Stream stream(dev);
  Plan g = plan(stream, sample,
                kernels::ProblemDesc::sdh(bucket_width, buckets), target_n);
  SdhPlan out;
  out.variant = static_cast<kernels::SdhVariant>(g.kernel->variant_id);
  out.block_size = g.block_size;
  out.predicted_seconds = g.predicted_seconds;
  out.considered = std::move(g.considered);
  return out;
}

PcfPlan plan_pcf(vgpu::Device& dev, const PointsSoA& sample, double radius,
                 double target_n) {
  vgpu::Stream stream(dev);
  Plan g = plan(stream, sample, kernels::ProblemDesc::pcf(radius), target_n);
  PcfPlan out;
  out.variant = static_cast<kernels::PcfVariant>(g.kernel->variant_id);
  out.block_size = g.block_size;
  out.predicted_seconds = g.predicted_seconds;
  out.considered = std::move(g.considered);
  return out;
}

}  // namespace tbs::core
