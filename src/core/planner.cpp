#include "core/planner.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "perfmodel/counts.hpp"
#include "perfmodel/timemodel.hpp"

namespace tbs::core {

namespace {

/// Calibration sizes (multiples of every candidate block size).
constexpr std::array<double, 3> kCalibN = {512, 1024, 2048};

/// Truncate the sample to n points (cycling if the sample is smaller).
PointsSoA take(const PointsSoA& sample, std::size_t n) {
  check(!sample.empty(), "planner: empty sample");
  PointsSoA out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(sample[i % sample.size()]);
  return out;
}

/// Simulate at the three calibration sizes and price at target_n.
template <class RunFn>
Candidate price(vgpu::Device& dev, const PointsSoA& sample,
                const std::string& name, double target_n, RunFn run) {
  std::array<vgpu::KernelStats, 3> stats;
  for (int i = 0; i < 3; ++i) {
    const PointsSoA pts =
        take(sample, static_cast<std::size_t>(kCalibN[
            static_cast<std::size_t>(i)]));
    stats[static_cast<std::size_t>(i)] = run(dev, pts);
  }
  const perfmodel::StatsPoly poly(kCalibN, stats);
  const auto report =
      perfmodel::model_time(dev.spec(), poly.predict(target_n));
  return Candidate{name, report.seconds, report.bottleneck};
}

}  // namespace

SdhPlan plan_sdh(vgpu::Device& dev, const PointsSoA& sample,
                 double bucket_width, int buckets, double target_n) {
  using kernels::SdhVariant;
  SdhPlan plan;
  plan.predicted_seconds = std::numeric_limits<double>::infinity();

  constexpr SdhVariant kVariants[] = {
      SdhVariant::NaiveOut,   SdhVariant::RegShmOut, SdhVariant::RegRocOut,
      SdhVariant::RegShmLb,   SdhVariant::ShuffleOut,
  };
  constexpr int kBlockSizes[] = {128, 256, 512};

  for (const SdhVariant v : kVariants) {
    for (const int b : kBlockSizes) {
      // Skip configurations whose shared demand cannot launch.
      if (kernels::sdh_shared_bytes(v, b, buckets) >
          dev.spec().shared_mem_per_block_cap)
        continue;
      const std::string name =
          std::string(kernels::to_string(v)) + "/B" + std::to_string(b);
      Candidate c = price(dev, sample, name, target_n,
                          [&](vgpu::Device& d, const PointsSoA& pts) {
                            return kernels::run_sdh(d, pts, bucket_width,
                                                    buckets, v, b)
                                .stats;
                          });
      if (c.predicted_seconds < plan.predicted_seconds) {
        plan.predicted_seconds = c.predicted_seconds;
        plan.variant = v;
        plan.block_size = b;
      }
      plan.considered.push_back(std::move(c));
    }
  }
  check(!plan.considered.empty(), "plan_sdh: no launchable candidate");
  return plan;
}

PcfPlan plan_pcf(vgpu::Device& dev, const PointsSoA& sample, double radius,
                 double target_n) {
  using kernels::PcfVariant;
  PcfPlan plan;
  plan.predicted_seconds = std::numeric_limits<double>::infinity();

  constexpr PcfVariant kVariants[] = {
      PcfVariant::ShmShm,
      PcfVariant::RegShm,
      PcfVariant::RegRoc,
  };
  constexpr int kBlockSizes[] = {128, 256, 512};

  for (const PcfVariant v : kVariants) {
    for (const int b : kBlockSizes) {
      const std::string name =
          std::string(kernels::to_string(v)) + "/B" + std::to_string(b);
      Candidate c = price(dev, sample, name, target_n,
                          [&](vgpu::Device& d, const PointsSoA& pts) {
                            return kernels::run_pcf(d, pts, radius, v, b)
                                .stats;
                          });
      if (c.predicted_seconds < plan.predicted_seconds) {
        plan.predicted_seconds = c.predicted_seconds;
        plan.variant = v;
        plan.block_size = b;
      }
      plan.considered.push_back(std::move(c));
    }
  }
  return plan;
}

}  // namespace tbs::core
