#include "core/angular.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "core/generic.hpp"

namespace tbs::core {

AngularResult run_angular_correlation(vgpu::Device& dev,
                                      const PointsSoA& dirs, int buckets,
                                      int block_size) {
  check(buckets > 0, "run_angular_correlation: bad bucket count");
  const float scale =
      static_cast<float>(buckets / std::numbers::pi);
  const auto bucket_fn = [scale, buckets](const Point3& a,
                                          const Point3& b) {
    const float dot =
        std::clamp(a.x * b.x + a.y * b.y + a.z * b.z, -1.0f, 1.0f);
    const int idx = static_cast<int>(std::acos(dot) * scale);
    return std::min(idx, buckets - 1);
  };
  // dot (5) + clamp (2) + acos (~8 SFU) + scale/min (2)
  constexpr double kOpsPerPair = 17.0;

  auto generic = run_generic_histogram(dev, dirs, bucket_fn, buckets,
                                       kOpsPerPair, block_size);
  return AngularResult{std::move(generic.counts), generic.stats};
}

PointsSoA random_sphere(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  PointsSoA out(n);
  for (std::size_t i = 0; i < n; ++i) {
    double x = 0, y = 0, z = 0, r2 = 0;
    do {
      x = rng.gaussian();
      y = rng.gaussian();
      z = rng.gaussian();
      r2 = x * x + y * y + z * z;
    } while (r2 < 1e-12);
    const double inv = 1.0 / std::sqrt(r2);
    out.set(i, {static_cast<float>(x * inv), static_cast<float>(y * inv),
                static_cast<float>(z * inv)});
  }
  return out;
}

PointsSoA clustered_sphere(std::size_t n, std::size_t k, double sigma_rad,
                           std::uint64_t seed) {
  check(k > 0, "clustered_sphere: need at least one cluster");
  Rng rng(seed);
  const PointsSoA centres = random_sphere(k, seed ^ 0x5eedULL);
  PointsSoA out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Point3 c = centres[rng.uniform_index(k)];
    // Perturb the centre by a gaussian tangent displacement, renormalize.
    double x = c.x + sigma_rad * rng.gaussian();
    double y = c.y + sigma_rad * rng.gaussian();
    double z = c.z + sigma_rad * rng.gaussian();
    const double norm = std::sqrt(x * x + y * y + z * z);
    check(norm > 1e-12, "clustered_sphere: degenerate direction");
    out.set(i, {static_cast<float>(x / norm), static_cast<float>(y / norm),
                static_cast<float>(z / norm)});
  }
  return out;
}

}  // namespace tbs::core
