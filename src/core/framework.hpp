// TwoBodyFramework — the user-facing facade of the library.
//
// One object owns a simulated device and exposes every 2-BS problem as a
// single call. By default each call auto-plans (classify output pattern,
// price kernel variants, pick the cheapest — the paper's framework vision);
// the chosen plan is retrievable afterwards for inspection. Planned
// problems (sdh/pcf) run through the framework's stream on the async
// runtime, and plans are memoized in a PlanCache: a repeated query shape
// reuses its plan with zero additional calibration launches.
#pragma once

#include <optional>

#include "core/planner.hpp"
#include "core/problem.hpp"
#include "kernels/pcf.hpp"
#include "kernels/sdh.hpp"
#include "kernels/type1.hpp"
#include "kernels/type3.hpp"
#include "vgpu/device.hpp"
#include "vgpu/stream.hpp"

namespace tbs::core {

class TwoBodyFramework {
 public:
  explicit TwoBodyFramework(vgpu::DeviceSpec spec = vgpu::DeviceSpec{});

  [[nodiscard]] vgpu::Device& device() noexcept { return dev_; }

  /// Spatial distance histogram (Type-II), auto-planned.
  kernels::SdhResult sdh(const PointsSoA& pts, double bucket_width,
                         int buckets);

  /// 2-point correlation function (Type-I), auto-planned.
  kernels::PcfResult pcf(const PointsSoA& pts, double radius);

  /// All-point kNN distances (Type-I), k <= kernels::kMaxKnnK.
  kernels::KnnResult knn(const PointsSoA& pts, int k, int block_size = 256);

  /// Gaussian KDE at each point (Type-I).
  kernels::KdeResult kde(const PointsSoA& pts, double bandwidth,
                         int block_size = 256);

  /// Distance join (Type-III); two-phase output strategy by default.
  kernels::JoinResult join(const PointsSoA& pts, double radius,
                           kernels::JoinVariant variant =
                               kernels::JoinVariant::TwoPhase,
                           int block_size = 256);

  /// RBF Gram matrix (Type-III).
  kernels::GramResult gram(const PointsSoA& pts, double gamma,
                           int block_size = 256);

  /// Plan chosen by the most recent sdh() call, if any.
  [[nodiscard]] const std::optional<SdhPlan>& last_sdh_plan() const {
    return sdh_plan_;
  }
  /// Plan chosen by the most recent pcf() call, if any.
  [[nodiscard]] const std::optional<PcfPlan>& last_pcf_plan() const {
    return pcf_plan_;
  }

  /// The memoized plans accumulated by sdh()/pcf() calls.
  [[nodiscard]] const PlanCache& plan_cache() const { return plan_cache_; }

 private:
  vgpu::Device dev_;
  vgpu::Stream stream_{dev_};  ///< all planned launches flow through here
  PlanCache plan_cache_;
  std::optional<SdhPlan> sdh_plan_;
  std::optional<PcfPlan> pcf_plan_;
};

}  // namespace tbs::core
