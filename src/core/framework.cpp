#include "core/framework.hpp"

#include <algorithm>

namespace tbs::core {

namespace {

/// Planning below this size costs more than it saves; use the paper's
/// default choices directly.
constexpr std::size_t kPlanThreshold = 2048;

}  // namespace

TwoBodyFramework::TwoBodyFramework(vgpu::DeviceSpec spec)
    : dev_(std::move(spec)) {}

kernels::SdhResult TwoBodyFramework::sdh(const PointsSoA& pts,
                                         double bucket_width, int buckets) {
  kernels::SdhVariant variant = kernels::SdhVariant::RegRocOut;
  int block = 256;
  if (pts.size() > kPlanThreshold) {
    const Plan p =
        plan(stream_, pts, kernels::ProblemDesc::sdh(bucket_width, buckets),
             static_cast<double>(pts.size()), &plan_cache_);
    variant = static_cast<kernels::SdhVariant>(p.kernel->variant_id);
    block = p.block_size;
    sdh_plan_ = SdhPlan{variant, block, p.predicted_seconds, p.considered};
  } else {
    sdh_plan_.reset();
  }
  return kernels::run_sdh(stream_, pts, bucket_width, buckets, variant,
                          block);
}

kernels::PcfResult TwoBodyFramework::pcf(const PointsSoA& pts,
                                         double radius) {
  kernels::PcfVariant variant = kernels::PcfVariant::RegShm;
  int block = 256;
  if (pts.size() > kPlanThreshold) {
    const Plan p = plan(stream_, pts, kernels::ProblemDesc::pcf(radius),
                        static_cast<double>(pts.size()), &plan_cache_);
    variant = static_cast<kernels::PcfVariant>(p.kernel->variant_id);
    block = p.block_size;
    pcf_plan_ = PcfPlan{variant, block, p.predicted_seconds, p.considered};
  } else {
    pcf_plan_.reset();
  }
  return kernels::run_pcf(stream_, pts, radius, variant, block);
}

kernels::KnnResult TwoBodyFramework::knn(const PointsSoA& pts, int k,
                                         int block_size) {
  return kernels::run_knn(dev_, pts, k, block_size);
}

kernels::KdeResult TwoBodyFramework::kde(const PointsSoA& pts,
                                         double bandwidth, int block_size) {
  return kernels::run_kde(dev_, pts, bandwidth, block_size);
}

kernels::JoinResult TwoBodyFramework::join(const PointsSoA& pts,
                                           double radius,
                                           kernels::JoinVariant variant,
                                           int block_size) {
  return kernels::run_distance_join(dev_, pts, radius, variant, block_size);
}

kernels::GramResult TwoBodyFramework::gram(const PointsSoA& pts,
                                           double gamma, int block_size) {
  return kernels::run_gram(dev_, pts, gamma, block_size);
}

}  // namespace tbs::core
