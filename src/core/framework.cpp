#include "core/framework.hpp"

#include <algorithm>

namespace tbs::core {

namespace {

/// Planning below this size costs more than it saves; use the paper's
/// default choices directly.
constexpr std::size_t kPlanThreshold = 2048;

}  // namespace

TwoBodyFramework::TwoBodyFramework(vgpu::DeviceSpec spec)
    : dev_(std::move(spec)) {}

kernels::SdhResult TwoBodyFramework::sdh(const PointsSoA& pts,
                                         double bucket_width, int buckets) {
  kernels::SdhVariant variant = kernels::SdhVariant::RegRocOut;
  int block = 256;
  if (pts.size() > kPlanThreshold) {
    const SdhPlan plan = plan_sdh(dev_, pts, bucket_width, buckets,
                                  static_cast<double>(pts.size()));
    variant = plan.variant;
    block = plan.block_size;
    sdh_plan_ = plan;
  } else {
    sdh_plan_.reset();
  }
  return kernels::run_sdh(dev_, pts, bucket_width, buckets, variant, block);
}

kernels::PcfResult TwoBodyFramework::pcf(const PointsSoA& pts,
                                         double radius) {
  kernels::PcfVariant variant = kernels::PcfVariant::RegShm;
  int block = 256;
  if (pts.size() > kPlanThreshold) {
    const PcfPlan plan =
        plan_pcf(dev_, pts, radius, static_cast<double>(pts.size()));
    variant = plan.variant;
    block = plan.block_size;
    pcf_plan_ = plan;
  } else {
    pcf_plan_.reset();
  }
  return kernels::run_pcf(dev_, pts, radius, variant, block);
}

kernels::KnnResult TwoBodyFramework::knn(const PointsSoA& pts, int k,
                                         int block_size) {
  return kernels::run_knn(dev_, pts, k, block_size);
}

kernels::KdeResult TwoBodyFramework::kde(const PointsSoA& pts,
                                         double bandwidth, int block_size) {
  return kernels::run_kde(dev_, pts, bandwidth, block_size);
}

kernels::JoinResult TwoBodyFramework::join(const PointsSoA& pts,
                                           double radius,
                                           kernels::JoinVariant variant,
                                           int block_size) {
  return kernels::run_distance_join(dev_, pts, radius, variant, block_size);
}

kernels::GramResult TwoBodyFramework::gram(const PointsSoA& pts,
                                           double gamma, int block_size) {
  return kernels::run_gram(dev_, pts, gamma, block_size);
}

}  // namespace tbs::core
