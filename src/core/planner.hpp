// Kernel planner — the seed of the paper's envisioned framework that
// "automatically generates optimized code for any new 2-BS problem"
// (Sec. I & V). Given a problem instance and a target size, the planner
// simulates every planner-eligible registry variant at three small
// calibration sizes, extrapolates the counters with perfmodel::StatsPoly,
// prices them with perfmodel::model_time, and picks the cheapest.
//
// The generic entry point is plan(): it enumerates KernelRegistry rather
// than a per-problem table, so a new statistic becomes plannable the moment
// its variants register. plan_sdh() / plan_pcf() remain as typed wrappers
// over it. Calibration launches go through a Stream, so planning shares the
// async runtime with serving; pass a PlanCache to memoize plans across
// queries (calibration is the expensive part — a hit costs zero launches).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include <span>

#include "backend/backend.hpp"
#include "common/points.hpp"
#include "core/feedback.hpp"
#include "kernels/pcf.hpp"
#include "kernels/registry.hpp"
#include "kernels/sdh.hpp"
#include "vgpu/device.hpp"
#include "vgpu/stream.hpp"

namespace tbs::core {

/// One priced candidate considered by the planner.
struct Candidate {
  std::string name;
  double predicted_seconds = 0.0;
  std::string bottleneck;
  std::string backend;  ///< Capabilities::name of the pricing backend
  /// The backend's raw estimate before any EstimateCorrector factor —
  /// kept so a memoized plan can be re-ranked with *current* factors on a
  /// cache hit, without re-pricing a single candidate.
  double raw_seconds = 0.0;
  const kernels::KernelVariant* kernel = nullptr;  ///< re-rank rebinds this
  int block_size = 256;
  backend::Kind kind = backend::Kind::Vgpu;
};

/// A generic plan: the winning (backend, registry variant, block size).
/// The backend is identified by kind + capability name, never by pointer —
/// plans outlive the backends that priced them (PlanCache), and a consumer
/// re-binds by matching backend_name against its own backend set.
struct Plan {
  const kernels::KernelVariant* kernel = nullptr;
  int block_size = 256;
  double predicted_seconds = 0.0;
  backend::Kind backend = backend::Kind::Vgpu;
  std::string backend_name;  ///< e.g. "vgpu:sim-titan-x", "cpu:8w"
  /// Winner's raw (uncorrected) estimate — what the serving layer feeds
  /// back to the EstimateCorrector alongside the measured seconds.
  double raw_predicted_seconds = 0.0;
  /// Winner's candidate name ("<variant>/B<block>") — the corrector's
  /// variant key, so the feedback loop keys exactly what was priced.
  std::string variant_key;
  std::vector<Candidate> considered;  ///< all candidates, priced
};

struct SdhPlan {
  kernels::SdhVariant variant = kernels::SdhVariant::RegRocOut;
  int block_size = 256;
  double predicted_seconds = 0.0;
  std::vector<Candidate> considered;  ///< all candidates, priced
};

struct PcfPlan {
  kernels::PcfVariant variant = kernels::PcfVariant::RegShm;
  int block_size = 256;
  double predicted_seconds = 0.0;
  std::vector<Candidate> considered;
};

/// Memoization key for a planning request: device identity, problem
/// descriptor, and the target size rounded up to a power of two (the time
/// model is smooth in N, so nearby sizes share a plan).
std::string plan_cache_key(const vgpu::DeviceSpec& spec,
                           const kernels::ProblemDesc& desc, double target_n);

/// Backend-set key: the identity of every backend in the set (capability
/// name + parallel units + shared budget, order-sensitive) plus the same
/// problem/size bucketing. Two engines planning over equivalent pools
/// share entries; a different pool composition never aliases.
std::string plan_cache_key(std::span<backend::IBackend* const> backends,
                           const kernels::ProblemDesc& desc, double target_n);

/// Thread-safe plan memo. Keyed by plan_cache_key(); hit/miss counters are
/// exposed so tests (and ops dashboards) can assert cache effectiveness.
///
/// Concurrency contract (the serve layer's workers all share one cache):
/// lookups take a shared lock, so hits never serialize behind each other,
/// and calibration is single-flight — plan() holds the key's calibration
/// gate while simulating, so N threads missing on the same key run exactly
/// one calibration round between them (the rest block, then hit).
class PlanCache {
 public:
  [[nodiscard]] std::optional<Plan> find(const std::string& key) const;
  void store(const std::string& key, const Plan& plan);

  /// Per-key calibration gate: plan() holds this mutex across the miss path
  /// (calibrate + store) so concurrent misses on one key calibrate once.
  /// The gate outlives the cache entry; one gate per distinct key ever seen.
  [[nodiscard]] std::shared_ptr<std::mutex> calibration_gate(
      const std::string& key);

  /// find() without touching the hit/miss counters — the double-check a
  /// gate loser performs is not a client lookup and must not skew stats.
  [[nodiscard]] std::optional<Plan> peek(const std::string& key) const;

  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, Plan> plans_;
  std::map<std::string, std::shared_ptr<std::mutex>> gates_;  ///< under mu_
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

/// Plan a run of `target_n` points of the described problem over a set of
/// backends: every (backend × supported variant × block size) candidate is
/// priced through the backend's own cost model (Eqs. 2–7 for vgpu, the
/// calibrated throughput model for CPU) and the cheapest wins. `sample`
/// supplies the data distribution for calibration (a subset is used; it
/// may be much smaller than target_n). Candidates a backend cannot launch
/// (shared-memory demand over the device cap, missing substrate support)
/// are skipped; throws CheckError if no candidate is launchable anywhere.
/// With a cache, a repeat request returns the memoized plan without a
/// single calibration launch.
///
/// `corrector` (optional) closes the measured-vs-estimate feedback loop:
/// every candidate's raw estimate is multiplied by the corrector's EWMA
/// factor for its (backend, variant, N-bucket) key before the winner is
/// picked, and a cache *hit* is re-ranked from its stored raw estimates
/// with the factors in force now — so placement improves online while the
/// cache still costs zero launches.
Plan plan(std::span<backend::IBackend* const> backends,
          const PointsSoA& sample, const kernels::ProblemDesc& desc,
          double target_n, PlanCache* cache = nullptr,
          const EstimateCorrector* corrector = nullptr);

/// Legacy single-substrate entry point: plans over a VgpuBackend view of
/// `stream` (calibration launches stay on the caller's lane). Behaviour,
/// candidate set, and winners are unchanged from before the backend seam.
Plan plan(vgpu::Stream& stream, const PointsSoA& sample,
          const kernels::ProblemDesc& desc, double target_n,
          PlanCache* cache = nullptr);

/// Plan an SDH run of `target_n` points with the given histogram geometry.
SdhPlan plan_sdh(vgpu::Device& dev, const PointsSoA& sample,
                 double bucket_width, int buckets, double target_n);

/// Plan a 2-PCF run of `target_n` points.
PcfPlan plan_pcf(vgpu::Device& dev, const PointsSoA& sample, double radius,
                 double target_n);

}  // namespace tbs::core
