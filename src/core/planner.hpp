// Kernel planner — the seed of the paper's envisioned framework that
// "automatically generates optimized code for any new 2-BS problem"
// (Sec. I & V). Given a problem instance and a target size, the planner
// simulates every candidate kernel at three small calibration sizes,
// extrapolates the counters with perfmodel::StatsPoly, prices them with
// perfmodel::model_time, and picks the cheapest variant.
#pragma once

#include <string>
#include <vector>

#include "common/points.hpp"
#include "kernels/pcf.hpp"
#include "kernels/sdh.hpp"
#include "vgpu/device.hpp"

namespace tbs::core {

/// One priced candidate considered by the planner.
struct Candidate {
  std::string name;
  double predicted_seconds = 0.0;
  std::string bottleneck;
};

struct SdhPlan {
  kernels::SdhVariant variant = kernels::SdhVariant::RegRocOut;
  int block_size = 256;
  double predicted_seconds = 0.0;
  std::vector<Candidate> considered;  ///< all candidates, priced
};

struct PcfPlan {
  kernels::PcfVariant variant = kernels::PcfVariant::RegShm;
  int block_size = 256;
  double predicted_seconds = 0.0;
  std::vector<Candidate> considered;
};

/// Plan an SDH run of `target_n` points with the given histogram geometry.
/// `sample` supplies the data distribution for calibration (a subset is
/// used); it may be much smaller than target_n.
SdhPlan plan_sdh(vgpu::Device& dev, const PointsSoA& sample,
                 double bucket_width, int buckets, double target_n);

/// Plan a 2-PCF run of `target_n` points.
PcfPlan plan_pcf(vgpu::Device& dev, const PointsSoA& sample, double radius,
                 double target_n);

}  // namespace tbs::core
