#include "core/problem.hpp"

namespace tbs::core {

const char* to_string(OutputClass c) {
  switch (c) {
    case OutputClass::RegisterResident: return "Type-I (registers)";
    case OutputClass::SharedResident: return "Type-II (shared memory)";
    case OutputClass::GlobalResident: return "Type-III (global memory)";
  }
  return "?";
}

OutputClass classify(const OutputShape& shape,
                     const vgpu::DeviceSpec& spec) {
  // A thread can realistically keep ~8 words of output in registers before
  // spilling (the paper's "small enough to be placed in registers").
  constexpr std::size_t kRegisterBudgetBytes = 32;
  if (shape.bytes_per_block == 0 &&
      shape.bytes_per_thread <= kRegisterBudgetBytes)
    return OutputClass::RegisterResident;

  if (shape.commutative && shape.bytes_per_block > 0) {
    // Leave at least a quarter of the per-block shared budget for tiles.
    const std::size_t budget = spec.shared_mem_per_block_cap * 3 / 4;
    if (shape.bytes_per_block <= budget) return OutputClass::SharedResident;
  }
  return OutputClass::GlobalResident;
}

}  // namespace tbs::core
