// Generic 2-BS engine — the paper's long-term vision (Sec. I & V): one
// optimized kernel skeleton per output class, parameterized by the
// problem's distance function, so a *new* 2-BS needs no new kernel code.
//
//   Type-I  : run_generic_reduce    — accumulate f(p_i, p_j) over all
//             unordered pairs into per-thread registers, coalesced store,
//             host sum. Pairwise stage: Register-SHM tiling (the Fig. 2
//             winner).
//   Type-II : run_generic_histogram — bucket(p_i, p_j) -> privatized
//             shared-memory histogram + reduction kernel (the Fig. 4
//             winning output stage).
//   Type-III: run_generic_join      — predicate(p_i, p_j) -> emit (i, j)
//             with the two-phase (count, prefix-sum, emit) strategy.
//
// Functors run on the host (the simulator executes functionally), but the
// kernels charge their declared `ops_per_pair` to the cost model so the
// analytical machinery (planner, time model, extrapolation) works for
// user-defined statistics exactly as for the built-ins.
//
// The engine is header-only because the kernels are templates over the
// functor type; everything heavy lives in the vgpu executor.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/histogram.hpp"
#include "common/points.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"

namespace tbs::core {

/// Result of a Type-I generic run: the scalar statistic plus counters.
struct GenericReduceResult {
  double value = 0.0;
  vgpu::KernelStats stats;
};

/// Result of a Type-II generic run.
struct GenericHistogramResult {
  std::vector<std::uint64_t> counts;
  vgpu::KernelStats stats;
};

/// Result of a Type-III generic run.
struct GenericJoinResult {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  vgpu::KernelStats stats;
};

namespace detail {

/// Shared pairwise skeleton: Register-SHM tiling over all higher blocks
/// plus the reused-tile intra-block loop; `visit(q_index, q)` is invoked
/// once per unordered pair with this thread's anchor in `reg`.
///
/// PairVisit must be an awaitable-returning callable? No — simpler: the
/// three engines below inline the skeleton because Type-I visits are pure
/// register ops while Type-II/III visits must co_await; C++ coroutines
/// cannot abstract over "maybe co_await" without extra task machinery.
struct GenericParams {
  const vgpu::DevicePoints* pts = nullptr;
  int n = 0;
  double ops_per_pair = 8.0;
};

}  // namespace detail

/// Type-I: sum of fn(p_i, p_j) over all unordered pairs (i < j).
/// `fn` must be a pure function Point3 x Point3 -> double;
/// `ops_per_pair` is the arithmetic cost charged to the model per pair.
template <class PairFn>
GenericReduceResult run_generic_reduce(vgpu::Device& dev,
                                       const PointsSoA& pts, PairFn fn,
                                       double ops_per_pair, int block_size) {
  check(!pts.empty(), "run_generic_reduce: empty point set");
  check(block_size > 0, "run_generic_reduce: bad block size");
  const int n = static_cast<int>(pts.size());
  const int grid = (n + block_size - 1) / block_size;

  vgpu::DevicePoints dpts(pts);
  vgpu::DeviceBuffer<double> out(static_cast<std::size_t>(n), 0.0);

  const auto kernel = [&dpts, &out, n, ops_per_pair,
                       fn](vgpu::ThreadCtx& ctx) -> vgpu::KernelTask {
    const int B = ctx.block_dim;
    const int t = ctx.thread_id;
    const int b = ctx.block_id;
    const int M = ctx.grid_dim;
    const long g = static_cast<long>(b) * B + t;
    const bool active = g < n;

    vgpu::SharedPointsTile tile(ctx, 0, static_cast<std::size_t>(B));
    Point3 reg{};
    if (active)
      reg = co_await dpts.load_point(ctx, static_cast<std::size_t>(g));

    double acc = 0.0;
    ctx.mark_phase(vgpu::Phase::InterBlock);
    for (int i = b + 1; i < M; ++i) {
      const long src = static_cast<long>(i) * B + t;
      if (src < n)
        co_await tile.store_point(
            ctx, t,
            co_await dpts.load_point(ctx, static_cast<std::size_t>(src)));
      co_await ctx.sync();
      const int lim = static_cast<int>(
          std::min<long>(B, n - static_cast<long>(i) * B));
      if (active) {
        for (int j = 0; j < lim; ++j) {
          ctx.control(2);
          const Point3 q = co_await tile.load_point(ctx, j);
          ctx.arith(ops_per_pair);
          acc += fn(reg, q);
        }
      }
      co_await ctx.sync();
    }

    ctx.mark_phase(vgpu::Phase::IntraBlock);
    if (active) co_await tile.store_point(ctx, t, reg);
    co_await ctx.sync();
    const int lim_l = static_cast<int>(
        std::min<long>(B, n - static_cast<long>(b) * B));
    for (int i = t + 1; i < lim_l; ++i) {
      ctx.control(2);
      const Point3 q = co_await tile.load_point(ctx, i);
      ctx.arith(ops_per_pair);
      acc += fn(reg, q);
    }

    ctx.mark_phase(vgpu::Phase::Output);
    if (active)
      co_await out.store(ctx, static_cast<std::size_t>(g), acc);
  };

  GenericReduceResult result;
  vgpu::LaunchConfig cfg;
  cfg.grid_dim = grid;
  cfg.block_dim = block_size;
  cfg.shared_bytes =
      vgpu::SharedPointsTile::bytes(static_cast<std::size_t>(block_size));
  result.stats = dev.launch(cfg, kernel);
  for (const double v : out.host()) result.value += v;
  return result;
}

/// Type-II: histogram of bucket_fn(p_i, p_j) over all unordered pairs.
/// `bucket_fn` must return an int in [0, buckets) (values are clamped).
template <class BucketFn>
GenericHistogramResult run_generic_histogram(vgpu::Device& dev,
                                             const PointsSoA& pts,
                                             BucketFn bucket_fn, int buckets,
                                             double ops_per_pair,
                                             int block_size) {
  check(!pts.empty(), "run_generic_histogram: empty point set");
  check(buckets > 0, "run_generic_histogram: bad bucket count");
  check(block_size > 0, "run_generic_histogram: bad block size");
  const int n = static_cast<int>(pts.size());
  const int grid = (n + block_size - 1) / block_size;

  vgpu::DevicePoints dpts(pts);
  vgpu::DeviceBuffer<std::uint32_t> scratch(
      static_cast<std::size_t>(grid) * buckets, 0);
  vgpu::DeviceBuffer<std::uint64_t> out(static_cast<std::size_t>(buckets),
                                        0);

  const auto clampb = [buckets](int b) {
    return static_cast<std::size_t>(std::clamp(b, 0, buckets - 1));
  };

  const auto kernel = [&, bucket_fn](vgpu::ThreadCtx& ctx)
      -> vgpu::KernelTask {
    const int B = ctx.block_dim;
    const int t = ctx.thread_id;
    const int b = ctx.block_id;
    const int M = ctx.grid_dim;
    const long g = static_cast<long>(b) * B + t;
    const bool active = g < n;

    vgpu::SharedPointsTile tile(ctx, 0, static_cast<std::size_t>(B));
    auto hist = ctx.shared<std::uint32_t>(
        vgpu::SharedPointsTile::bytes(static_cast<std::size_t>(B)),
        static_cast<std::size_t>(buckets));
    for (int h = t; h < buckets; h += B) co_await hist.store(ctx, h, 0u);

    Point3 reg{};
    if (active)
      reg = co_await dpts.load_point(ctx, static_cast<std::size_t>(g));
    co_await ctx.sync();

    ctx.mark_phase(vgpu::Phase::InterBlock);
    for (int i = b + 1; i < M; ++i) {
      const long src = static_cast<long>(i) * B + t;
      if (src < n)
        co_await tile.store_point(
            ctx, t,
            co_await dpts.load_point(ctx, static_cast<std::size_t>(src)));
      co_await ctx.sync();
      const int lim = static_cast<int>(
          std::min<long>(B, n - static_cast<long>(i) * B));
      if (active) {
        for (int j = 0; j < lim; ++j) {
          ctx.control(2);
          const Point3 q = co_await tile.load_point(ctx, j);
          ctx.arith(ops_per_pair);
          co_await hist.atomic_add(ctx, clampb(bucket_fn(reg, q)), 1u);
        }
      }
      co_await ctx.sync();
    }

    ctx.mark_phase(vgpu::Phase::IntraBlock);
    if (active) co_await tile.store_point(ctx, t, reg);
    co_await ctx.sync();
    const int lim_l = static_cast<int>(
        std::min<long>(B, n - static_cast<long>(b) * B));
    for (int i = t + 1; i < lim_l; ++i) {
      ctx.control(2);
      const Point3 q = co_await tile.load_point(ctx, i);
      ctx.arith(ops_per_pair);
      co_await hist.atomic_add(ctx, clampb(bucket_fn(reg, q)), 1u);
    }

    co_await ctx.sync();
    ctx.mark_phase(vgpu::Phase::Output);
    for (int h = t; h < buckets; h += B) {
      const std::uint32_t v = co_await hist.load(ctx, h);
      co_await scratch.store(
          ctx, static_cast<std::size_t>(b) * buckets + h, v);
    }
  };

  const auto reduce = [&](vgpu::ThreadCtx& ctx) -> vgpu::KernelTask {
    const long h = ctx.global_thread_id();
    if (h >= buckets) co_return;
    ctx.mark_phase(vgpu::Phase::Output);
    std::uint64_t sum = 0;
    for (int c = 0; c < grid; ++c) {
      ctx.control(2);
      sum += co_await scratch.load(
          ctx, static_cast<std::size_t>(c) * buckets + h);
      ctx.arith(1);
    }
    co_await out.store(ctx, static_cast<std::size_t>(h), sum);
  };

  GenericHistogramResult result;
  vgpu::LaunchConfig cfg;
  cfg.grid_dim = grid;
  cfg.block_dim = block_size;
  cfg.shared_bytes =
      vgpu::SharedPointsTile::bytes(static_cast<std::size_t>(block_size)) +
      static_cast<std::size_t>(buckets) * sizeof(std::uint32_t);
  check(cfg.shared_bytes <= dev.spec().shared_mem_per_block_cap,
        "run_generic_histogram: histogram too large for shared memory "
        "(Type-II requires it; use a Type-III strategy)");
  result.stats = dev.launch(cfg, kernel);

  vgpu::LaunchConfig rcfg;
  rcfg.grid_dim = (buckets + block_size - 1) / block_size;
  rcfg.block_dim = block_size;
  result.stats.merge(dev.launch(rcfg, reduce));

  result.counts.assign(out.host().begin(), out.host().end());
  return result;
}

/// Type-III: emit every unordered pair (i, j) with pred(p_i, p_j) true,
/// using the two-phase strategy (no atomics).
template <class PredFn>
GenericJoinResult run_generic_join(vgpu::Device& dev, const PointsSoA& pts,
                                   PredFn pred, double ops_per_pair,
                                   int block_size) {
  check(!pts.empty(), "run_generic_join: empty point set");
  check(block_size > 0, "run_generic_join: bad block size");
  const int n = static_cast<int>(pts.size());
  const int grid = (n + block_size - 1) / block_size;

  vgpu::DevicePoints dpts(pts);
  vgpu::DeviceBuffer<std::uint32_t> counts(static_cast<std::size_t>(n), 0);
  vgpu::DeviceBuffer<std::uint32_t> offsets(static_cast<std::size_t>(n), 0);
  vgpu::DeviceBuffer<std::uint32_t> out_i;
  vgpu::DeviceBuffer<std::uint32_t> out_j;

  // One kernel, two modes (count / emit); mode selected per launch.
  const auto make_kernel = [&](bool emit) {
    return [&, emit, pred](vgpu::ThreadCtx& ctx) -> vgpu::KernelTask {
      const int B = ctx.block_dim;
      const int t = ctx.thread_id;
      const int b = ctx.block_id;
      const int M = ctx.grid_dim;
      const long g = static_cast<long>(b) * B + t;
      const bool active = g < n;

      vgpu::SharedPointsTile tile(ctx, 0, static_cast<std::size_t>(B));
      Point3 reg{};
      if (active)
        reg = co_await dpts.load_point(ctx, static_cast<std::size_t>(g));
      std::uint32_t found = 0;
      std::size_t slice = 0;
      if (emit && active)
        slice = co_await offsets.load(ctx, static_cast<std::size_t>(g));

      for (int i = b; i < M; ++i) {
        const long src = static_cast<long>(i) * B + t;
        if (src < n)
          co_await tile.store_point(
              ctx, t,
              co_await dpts.load_point(ctx, static_cast<std::size_t>(src)));
        co_await ctx.sync();
        const long base = static_cast<long>(i) * B;
        const int lim = static_cast<int>(std::min<long>(B, n - base));
        if (active) {
          const int j0 = (i == b) ? t + 1 : 0;
          for (int j = j0; j < lim; ++j) {
            ctx.control(2);
            const Point3 q = co_await tile.load_point(ctx, j);
            ctx.arith(ops_per_pair);
            if (pred(reg, q)) {
              if (emit) {
                co_await out_i.store(ctx, slice,
                                     static_cast<std::uint32_t>(g));
                co_await out_j.store(
                    ctx, slice, static_cast<std::uint32_t>(base + j));
                ++slice;
              } else {
                ++found;
              }
            }
          }
        }
        co_await ctx.sync();
      }
      if (!emit && active)
        co_await counts.store(ctx, static_cast<std::size_t>(g), found);
    };
  };

  vgpu::LaunchConfig cfg;
  cfg.grid_dim = grid;
  cfg.block_dim = block_size;
  cfg.shared_bytes =
      vgpu::SharedPointsTile::bytes(static_cast<std::size_t>(block_size));

  GenericJoinResult result;
  result.stats = dev.launch(cfg, make_kernel(/*emit=*/false));

  std::uint32_t total = 0;
  for (int i = 0; i < n; ++i) {
    offsets.host()[static_cast<std::size_t>(i)] = total;
    total += counts.host()[static_cast<std::size_t>(i)];
  }
  out_i = vgpu::DeviceBuffer<std::uint32_t>(
      std::max<std::size_t>(total, 1), 0);
  out_j = vgpu::DeviceBuffer<std::uint32_t>(
      std::max<std::size_t>(total, 1), 0);

  result.stats.merge(dev.launch(cfg, make_kernel(/*emit=*/true)));
  result.pairs.reserve(total);
  for (std::uint32_t e = 0; e < total; ++e)
    result.pairs.emplace_back(out_i.host()[e], out_j.host()[e]);
  return result;
}

}  // namespace tbs::core
