// Two-point *angular* correlation function (2-PACF) — one of the paper's
// motivating 2-BS problems (Sec. I, [3]): for directions on the unit
// sphere, histogram the angular separation acos(a . b) of every pair.
//
// Implemented entirely through the generic Type-II engine — this is the
// paper's framework vision in action: a new 2-BS defined by a distance
// functor alone, inheriting the optimized Register-SHM + privatized-output
// kernel skeleton.
#pragma once

#include <cstdint>
#include <vector>

#include "common/points.hpp"
#include "common/rng.hpp"
#include "vgpu/device.hpp"
#include "vgpu/stats.hpp"

namespace tbs::core {

struct AngularResult {
  /// counts[b] = pairs with separation in [b, b+1) * (pi / buckets).
  std::vector<std::uint64_t> counts;
  vgpu::KernelStats stats;
};

/// Histogram the pairwise angular separations of unit directions.
/// Precondition: every point of `dirs` has (approximately) unit norm.
AngularResult run_angular_correlation(vgpu::Device& dev,
                                      const PointsSoA& dirs, int buckets,
                                      int block_size = 256);

/// n directions uniform on the unit sphere (Marsaglia via gaussians).
PointsSoA random_sphere(std::size_t n, std::uint64_t seed);

/// n directions clustered around k random centres with angular spread
/// sigma_rad — a toy galaxy catalog for 2-PACF demos.
PointsSoA clustered_sphere(std::size_t n, std::size_t k, double sigma_rad,
                           std::uint64_t seed);

}  // namespace tbs::core
