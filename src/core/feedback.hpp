// EstimateCorrector — online measured-vs-estimate feedback for the planner.
//
// IBackend::estimate() prices candidates from an analytical model (Eqs. 2–7
// on the simulated device, a calibrated throughput model on the CPU). Both
// models carry systematic bias: the StatsPoly extrapolation drifts with the
// data distribution, and the CPU per-pair cost calibrated at one size is
// wrong at another. This class closes the loop: after every real execution
// the serving layer reports (backend, variant, N, estimated, measured), and
// the corrector maintains an EWMA of the measured/estimated ratio per
// (backend, variant, N-bucket) key — the same power-of-two N bucketing the
// PlanCache uses, so a correction learned at one size applies to every plan
// the cache would share at that size.
//
// core::plan() multiplies each candidate's raw estimate by the key's
// current factor before picking a winner, and re-ranks memoized plans from
// their stored raw estimates on every cache hit — so placement decisions
// improve online without a single extra calibration launch.
//
// Accuracy accounting: every observation records the relative error of the
// raw estimate and of the corrected estimate *as it was applied* (the
// factor in force before this observation updated it). `enforce()` is the
// drift-style gate: it fails loudly when any warmed-up key's recent
// corrected error exceeds tolerance — the signal that the model, the
// correction, and reality have come apart.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace tbs::core {

/// The planner's N bucketing: `n` rounded up to a power of two (>= 1).
std::uint64_t estimate_n_bucket(double n);

class EstimateCorrector {
 public:
  struct Config {
    /// EWMA smoothing for the ratio and the recent-error tracker.
    double alpha = 0.3;
    /// Correction factors are clamped to [min_factor, max_factor] so one
    /// absurd measurement (a stalled launch) cannot poison placement.
    double min_factor = 0.05;
    double max_factor = 20.0;
    /// Observations before factor() departs from 1.0 — a single noisy
    /// sample must not start steering the planner.
    std::uint64_t min_samples = 3;
  };

  /// Accuracy statistics for one key (or aggregated over all keys).
  struct Stats {
    std::uint64_t samples = 0;
    double factor = 1.0;  ///< current multiplier (1.0 until warmed up)
    /// Cumulative mean |estimate - measured| / measured of the raw
    /// estimate, and of the corrected estimate as applied per observation.
    double mae_uncorrected = 0.0;
    double mae_corrected = 0.0;
    /// EWMA of the corrected relative error — the "recent" accuracy the
    /// drift gate judges (a converged corrector pushes this toward the
    /// model's irreducible noise; a blowout spikes it immediately).
    double recent_err_corrected = 0.0;
  };

  EstimateCorrector() : EstimateCorrector(Config{}) {}
  explicit EstimateCorrector(Config cfg);

  /// Record one execution: the raw (uncorrected) estimate the backend gave
  /// for the winning candidate and the measured seconds on the same clock
  /// (modeled device seconds for vgpu, wall seconds for cpu). Non-positive
  /// inputs are ignored — there is nothing to learn from them.
  void observe(std::string_view backend, std::string_view variant,
               double target_n, double estimated_raw, double measured);

  /// Multiplier to apply to a raw estimate for this key; 1.0 until the key
  /// has Config::min_samples observations.
  [[nodiscard]] double factor(std::string_view backend,
                              std::string_view variant,
                              double target_n) const;

  [[nodiscard]] Stats stats(std::string_view backend,
                            std::string_view variant, double target_n) const;

  /// Sample-weighted aggregate over every key (factor is the hottest
  /// key's).
  [[nodiscard]] Stats overall() const;

  [[nodiscard]] std::uint64_t keys() const;

  /// Total observations across keys (cheap; what dashboards poll).
  [[nodiscard]] std::uint64_t observations() const;

  /// Drift-style accuracy gate: throws CheckError naming the worst key when
  /// any key with >= min_samples observations has recent_err_corrected
  /// above `tolerance`.
  void enforce(double tolerance) const;

  /// {"keys": N, "observations": N, "entries": {"<key>": {...}}}
  [[nodiscard]] std::string json() const;

 private:
  struct Entry {
    std::uint64_t samples = 0;
    double ewma_ratio = 1.0;  ///< EWMA of measured / estimated_raw
    double sum_err_uncorrected = 0.0;
    double sum_err_corrected = 0.0;
    double recent_err_corrected = 0.0;
  };

  [[nodiscard]] static std::string key_of(std::string_view backend,
                                          std::string_view variant,
                                          std::uint64_t n_bucket);
  [[nodiscard]] double clamped_factor(const Entry& e) const;

  Config cfg_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace tbs::core
