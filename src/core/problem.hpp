// 2-BS problem descriptors and the output-pattern classification of
// Sec. III-B: Type-I (register-resident output), Type-II (shared-memory-
// resident output), Type-III (global-memory output).
#pragma once

#include <cstddef>
#include <string>

#include "vgpu/spec.hpp"

namespace tbs::core {

/// The paper's three output classes.
enum class OutputClass {
  RegisterResident,  ///< Type-I  — e.g. 2-PCF, small-k kNN, KDE
  SharedResident,    ///< Type-II — e.g. SDH, RDF
  GlobalResident,    ///< Type-III — e.g. joins, Gram matrices
};

const char* to_string(OutputClass c);

/// What a 2-BS problem's output looks like, independent of any kernel.
struct OutputShape {
  /// Bytes of output state each *thread* must keep live during the
  /// pairwise stage (e.g. 4 for a pair counter, 4k for a kNN list).
  std::size_t bytes_per_thread = 0;
  /// Bytes of the combined output one *block* would privatize
  /// (e.g. 4 * buckets for a histogram). 0 when per-thread state is the
  /// whole output.
  std::size_t bytes_per_block = 0;
  /// Whether per-block private copies can be merged by reduction
  /// (commutative updates). Joins/Gram emits are not.
  bool commutative = true;
};

/// Classify an output shape against a device (Sec. III-B's decision).
/// Rules:
///  * fits in a handful of registers per thread -> RegisterResident;
///  * one private copy per block fits in shared memory (leaving room for a
///    tile) and updates are commutative -> SharedResident;
///  * otherwise -> GlobalResident.
OutputClass classify(const OutputShape& shape, const vgpu::DeviceSpec& spec);

}  // namespace tbs::core
