#include "perfmodel/counts.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tbs::perfmodel {

double paper_eq2_naive_global(double n) {
  return n + n * (n - 1.0) / 2.0;
}

double paper_eq3_tiled_global(double n, double b) {
  check(b > 0, "eq3: block size must be positive");
  const double m = n / b;
  // sum_{i=1..M} (M - i) B = B * M(M-1)/2
  return n + b * m * (m - 1.0) / 2.0;
}

double paper_eq4_shmshm_shared(double n, double b) {
  check(b > 0, "eq4: block size must be positive");
  const double m = n / b;
  const double inter = m * (m - 1.0) / 2.0 * b * b;  // sum (M-i) B^2
  const double intra = b * (b - 1.0) / 2.0 * m;      // sum (B-i) M
  return 2.0 * (inter + intra);
}

double paper_eq5_regshm_shared(double n, double b) {
  return paper_eq4_shmshm_shared(n, b) / 2.0;
}

double paper_eq6_output_updates(double n, double b) {
  // sum_{i=1..N} (N + B - i) = N(N-1)/2 + N B  (as printed in the paper)
  return n * (n - 1.0) / 2.0 + n * b;
}

double paper_eq7_reduction_accesses(double n, double b, double hs) {
  check(b > 0, "eq7: block size must be positive");
  const double m = n / b;
  return hs * (m * 3.0 + 1.0);
}

namespace {

/// Fit y = c0 + c1 x + c2 x^2 through three points and evaluate at x.
double quad_interp(const std::array<double, 3>& xs,
                   const std::array<double, 3>& ys, double x) {
  // Lagrange form; exact for the three nodes.
  double out = 0.0;
  for (int i = 0; i < 3; ++i) {
    double term = ys[static_cast<std::size_t>(i)];
    for (int j = 0; j < 3; ++j) {
      if (i == j) continue;
      term *= (x - xs[static_cast<std::size_t>(j)]) /
              (xs[static_cast<std::size_t>(i)] -
               xs[static_cast<std::size_t>(j)]);
    }
    out += term;
  }
  return out;
}

}  // namespace

StatsPoly::StatsPoly(const std::array<double, 3>& ns,
                     const std::array<vgpu::KernelStats, 3>& samples)
    : ns_(ns), samples_(samples) {
  check(ns[0] > 0 && ns[0] < ns[1] && ns[1] < ns[2],
        "StatsPoly: sample sizes must be positive and increasing");
  check(samples[0].block_dim == samples[1].block_dim &&
            samples[1].block_dim == samples[2].block_dim,
        "StatsPoly: samples must share a block size");
}

vgpu::KernelStats StatsPoly::predict(double n) const {
  using vgpu::KernelStats;
  KernelStats out;

  const auto fit_u64 = [&](std::uint64_t KernelStats::* f) {
    std::array<double, 3> ys{};
    for (int i = 0; i < 3; ++i)
      ys[static_cast<std::size_t>(i)] = static_cast<double>(
          samples_[static_cast<std::size_t>(i)].*f);
    out.*f = static_cast<std::uint64_t>(
        std::llround(std::max(0.0, quad_interp(ns_, ys, n))));
  };
  const auto fit_f64 = [&](double KernelStats::* f) {
    std::array<double, 3> ys{};
    for (int i = 0; i < 3; ++i)
      ys[static_cast<std::size_t>(i)] =
          samples_[static_cast<std::size_t>(i)].*f;
    out.*f = std::max(0.0, quad_interp(ns_, ys, n));
  };

  fit_u64(&KernelStats::global_loads);
  fit_u64(&KernelStats::global_stores);
  fit_u64(&KernelStats::global_atomics);
  fit_u64(&KernelStats::roc_loads);
  fit_u64(&KernelStats::shared_loads);
  fit_u64(&KernelStats::shared_stores);
  fit_u64(&KernelStats::shared_atomics);
  fit_u64(&KernelStats::shuffles);
  fit_u64(&KernelStats::barriers);
  fit_u64(&KernelStats::dram_bytes);
  fit_u64(&KernelStats::l2_bytes);
  fit_u64(&KernelStats::roc_hit_bytes);
  fit_u64(&KernelStats::roc_port_cycles);
  fit_u64(&KernelStats::shared_bytes);
  fit_u64(&KernelStats::global_transactions);
  fit_u64(&KernelStats::shared_transactions);
  fit_u64(&KernelStats::bank_conflict_extra);
  fit_u64(&KernelStats::atomic_collision_extra);
  fit_u64(&KernelStats::warp_instructions);
  fit_u64(&KernelStats::active_lane_slots);
  fit_u64(&KernelStats::possible_lane_slots);
  fit_f64(&KernelStats::global_atomic_port_cycles);
  fit_f64(&KernelStats::arith_ops);
  fit_f64(&KernelStats::arith_warp_cycles);
  fit_f64(&KernelStats::control_ops);
  fit_f64(&KernelStats::control_warp_cycles);
  fit_f64(&KernelStats::total_warp_cycles);
  fit_f64(&KernelStats::max_block_cycles);

  // Phase cycles: fit every phase id present in the samples. (Callers that
  // know a phase's exact scaling law — e.g. the intra-block phase is
  // linear in the block count — should prefer scaling the largest sample
  // directly; see bench/fig7_loadbalance.)
  for (const auto& [id, unused] : samples_[2].phase_cycles) {
    (void)unused;
    std::array<double, 3> ys{};
    for (int i = 0; i < 3; ++i) {
      const auto& pc = samples_[static_cast<std::size_t>(i)].phase_cycles;
      const auto it = pc.find(id);
      ys[static_cast<std::size_t>(i)] = it == pc.end() ? 0.0 : it->second;
    }
    out.phase_cycles[id] = std::max(0.0, quad_interp(ns_, ys, n));
  }

  // Config echoes: distinct-lines is H-dependent, not N-dependent.
  out.atomic_distinct_lines = samples_[2].atomic_distinct_lines;
  out.block_dim = samples_[2].block_dim;
  out.grid_dim = static_cast<int>(
      std::ceil(n / static_cast<double>(samples_[2].block_dim)));
  out.shared_bytes_per_block = samples_[2].shared_bytes_per_block;
  out.regs_per_thread = samples_[2].regs_per_thread;
  out.launches = samples_[2].launches;
  return out;
}

}  // namespace tbs::perfmodel
