#include "perfmodel/cpumodel.hpp"

#include "common/error.hpp"

namespace tbs::perfmodel {

CpuModel::CpuModel(double pairs, double seconds, unsigned threads_used)
    : pair_cost_(0.0) {
  check(pairs > 0 && seconds > 0 && threads_used > 0,
        "CpuModel: calibration inputs must be positive");
  pair_cost_ = seconds * threads_used / pairs;
}

double CpuModel::seconds(double n, unsigned cores) const {
  check(cores > 0, "CpuModel: cores must be positive");
  const double pairs = n * (n - 1.0) / 2.0;
  return pairs * pair_cost_ / cores;
}

}  // namespace tbs::perfmodel
