// Occupancy calculator: how many blocks/warps can be resident per SM given
// the launch's shared-memory, register and thread-count demands. This is
// the mechanism behind the paper's Fig. 5 (occupancy steps down as the
// histogram grows and fewer private copies fit per SM).
#pragma once

#include "vgpu/spec.hpp"

namespace tbs::perfmodel {

struct OccupancyResult {
  int blocks_per_sm = 0;
  int warps_per_sm = 0;
  double occupancy = 0.0;  ///< warps_per_sm / max resident warps
  const char* limiter = "";
};

/// Resident-block calculation, mirroring the CUDA occupancy calculator.
OccupancyResult occupancy(const vgpu::DeviceSpec& spec, int block_dim,
                          std::size_t shared_bytes_per_block,
                          int regs_per_thread);

}  // namespace tbs::perfmodel
