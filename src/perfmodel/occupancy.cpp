#include "perfmodel/occupancy.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tbs::perfmodel {

OccupancyResult occupancy(const vgpu::DeviceSpec& spec, int block_dim,
                          std::size_t shared_bytes_per_block,
                          int regs_per_thread) {
  check(block_dim > 0 && block_dim <= spec.max_threads_per_block,
        "occupancy: block_dim out of range");

  OccupancyResult r;
  int blocks = spec.max_blocks_per_sm;
  r.limiter = "max-blocks";

  const int by_threads = spec.max_threads_per_sm / block_dim;
  if (by_threads < blocks) {
    blocks = by_threads;
    r.limiter = "threads";
  }
  if (shared_bytes_per_block > 0) {
    const auto by_shared = static_cast<int>(
        spec.shared_mem_per_sm / shared_bytes_per_block);
    if (by_shared < blocks) {
      blocks = by_shared;
      r.limiter = "shared-memory";
    }
  }
  if (regs_per_thread > 0) {
    const auto by_regs = static_cast<int>(
        spec.regs_per_sm /
        (static_cast<long>(regs_per_thread) * block_dim));
    if (by_regs < blocks) {
      blocks = by_regs;
      r.limiter = "registers";
    }
  }

  r.blocks_per_sm = std::max(blocks, 0);
  const int warps_per_block =
      (block_dim + spec.warp_size - 1) / spec.warp_size;
  r.warps_per_sm = r.blocks_per_sm * warps_per_block;
  const int max_warps = spec.max_threads_per_sm / spec.warp_size;
  r.occupancy =
      static_cast<double>(r.warps_per_sm) / static_cast<double>(max_warps);
  return r;
}

}  // namespace tbs::perfmodel
