// Host <-> device transfer model (paper Sec. III-A: input reaches global
// memory by DMA over PCI-E). Kernel-time models in this repo exclude
// transfers, as the paper's figures do; benches that want end-to-end
// numbers add them explicitly through this model.
#pragma once

#include <cstdint>

namespace tbs::perfmodel {

/// First-order PCI-E DMA model: fixed setup latency + bytes / bandwidth.
struct TransferModel {
  double bandwidth = 12.0e9;   ///< bytes/s (PCIe 3.0 x16 effective)
  double latency_s = 10.0e-6;  ///< per-transfer setup cost

  /// Seconds to move `bytes` in one DMA transfer (either direction).
  [[nodiscard]] double seconds(std::uint64_t bytes) const {
    return latency_s + static_cast<double>(bytes) / bandwidth;
  }

  /// Seconds to broadcast `bytes` to `devices` devices sequentially over
  /// one host link (the conservative multi-GPU input-distribution cost).
  [[nodiscard]] double broadcast_seconds(std::uint64_t bytes,
                                         int devices) const {
    return seconds(bytes) * devices;
  }
};

}  // namespace tbs::perfmodel
