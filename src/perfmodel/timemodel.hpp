// Kernel-time model: converts exact execution counters (vgpu::KernelStats)
// into predicted kernel time, per-unit utilization and achieved bandwidth —
// the quantities the paper reads off the NVIDIA Visual Profiler.
//
// The model is a first-order roofline with a latency/occupancy leg:
//   time = max( latency-limited, arithmetic, control,
//               DRAM, L2, read-only cache, shared-memory port,
//               global-atomic serialization )
// where
//   latency-limited = total serial warp cycles / resident warps,
//   shared port     = banked-port busy cycles / (SM count),
//   atomic serial   = L2-slice busy cycles / usable slices.
// Every leg is derived from counters the executor measured, so each
// reported number is explainable — mirroring how the paper argues about
// its kernels (Eqs. 2–7 + profiler readouts).
#pragma once

#include <string>

#include "perfmodel/occupancy.hpp"
#include "vgpu/spec.hpp"
#include "vgpu/stats.hpp"

namespace tbs::perfmodel {

/// Time breakdown and profiler-style report for one kernel launch.
struct TimeReport {
  double seconds = 0.0;       ///< modeled kernel time
  std::string bottleneck;     ///< name of the binding leg

  // Per-leg times (seconds).
  double latency_s = 0.0;
  double arith_s = 0.0;
  double control_s = 0.0;
  double dram_s = 0.0;
  double l2_s = 0.0;
  double roc_s = 0.0;
  double shared_s = 0.0;
  double gatomic_s = 0.0;

  OccupancyResult occ;

  // Utilization (leg time / kernel time), the paper's Tables II & IV.
  [[nodiscard]] double util_arith() const { return arith_s / seconds; }
  [[nodiscard]] double util_control() const { return control_s / seconds; }
  [[nodiscard]] double util_dram() const { return dram_s / seconds; }
  [[nodiscard]] double util_l2() const { return l2_s / seconds; }
  [[nodiscard]] double util_roc() const { return roc_s / seconds; }
  [[nodiscard]] double util_shared() const { return shared_s / seconds; }

  // Achieved bandwidth (bytes/s), the paper's Table III.
  double bw_dram = 0.0;
  double bw_l2 = 0.0;
  double bw_roc = 0.0;
  double bw_shared = 0.0;  ///< port-equivalent bytes (transactions x 128B)
};

/// Model the launch described by `stats` on device `spec`.
TimeReport model_time(const vgpu::DeviceSpec& spec,
                      const vgpu::KernelStats& stats);

}  // namespace tbs::perfmodel
