// Calibrated multi-core CPU time model.
//
// The paper compares its GPU kernels against an optimized OpenMP baseline
// on an 8-core Xeon E5-2640v2. The reproduction machine is different, so
// GPU-vs-CPU speedup *shapes* are compared through a model: measure the
// per-pair cost of the real cpubase implementation on this host, then
// scale to the paper's core count. EXPERIMENTS.md documents the scaling
// assumption next to each affected figure.
#pragma once

#include <cstddef>

namespace tbs::perfmodel {

class CpuModel {
 public:
  /// Calibrate from a measured run: `pairs` distance evaluations took
  /// `seconds` on `threads_used` threads.
  CpuModel(double pairs, double seconds, unsigned threads_used);

  /// Per-pair cost of one core, in seconds.
  [[nodiscard]] double pair_cost() const noexcept { return pair_cost_; }

  /// Predicted wall time for an n-point 2-BS on `cores` cores.
  [[nodiscard]] double seconds(double n, unsigned cores) const;

  /// Paper-testbed equivalent (8-core Xeon E5-2640v2).
  [[nodiscard]] double paper_cpu_seconds(double n) const {
    return seconds(n, 8);
  }

 private:
  double pair_cost_;
};

}  // namespace tbs::perfmodel
