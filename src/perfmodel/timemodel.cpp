#include "perfmodel/timemodel.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tbs::perfmodel {

TimeReport model_time(const vgpu::DeviceSpec& spec,
                      const vgpu::KernelStats& stats) {
  check(stats.block_dim > 0, "model_time: stats carry no launch config");

  TimeReport r;
  r.occ = occupancy(spec, stats.block_dim, stats.shared_bytes_per_block,
                    stats.regs_per_thread);

  const double clock = spec.core_clock_hz;
  const int warps_per_block =
      (stats.block_dim + spec.warp_size - 1) / spec.warp_size;
  const double total_warps =
      static_cast<double>(stats.grid_dim) * warps_per_block;

  // Warps actually runnable at once: resident capacity across SMs, but no
  // more than the grid provides.
  const double resident =
      std::max(1.0, std::min(total_warps,
                             static_cast<double>(r.occ.warps_per_sm) *
                                 spec.sm_count));

  // Below the saturation knee, on-SM throughput units starve: each warp
  // instruction is separated by tens of cycles of latency, so a unit only
  // reaches its peak rate when most warp slots are occupied.
  const double feed = std::min(
      1.0, r.occ.occupancy / std::max(1e-9, spec.saturation_occupancy));

  r.latency_s = stats.total_warp_cycles / resident / clock;
  r.arith_s = stats.arith_warp_cycles /
              (spec.arith_ipc_per_sm * spec.sm_count * feed) / clock;
  r.control_s = stats.control_warp_cycles /
                (spec.arith_ipc_per_sm * spec.sm_count * feed) / clock;
  r.dram_s = static_cast<double>(stats.dram_bytes) / spec.bw_global;
  r.l2_s = static_cast<double>(stats.l2_bytes) / spec.bw_l2;
  // The read-only cache is request-throughput limited (tex units), not
  // byte limited: broadcast reads cost a request slot regardless of size.
  r.roc_s = static_cast<double>(stats.roc_port_cycles) /
            (spec.roc_requests_per_cycle * spec.sm_count * feed * clock);
  // Shared memory is a banked port per SM: one transaction (conflict-free
  // pass) per cycle per SM.
  r.shared_s = static_cast<double>(stats.shared_transactions) /
               (static_cast<double>(spec.sm_count) * feed * clock);
  // Global atomics serialize on L2 slices; parallelism is bounded by how
  // many distinct lines the atomics touch.
  const double slice_parallelism = std::max(
      1.0, std::min<double>(spec.l2_slices,
                            static_cast<double>(stats.atomic_distinct_lines)));
  r.gatomic_s = stats.global_atomic_port_cycles / slice_parallelism / clock;

  const struct {
    const char* name;
    double t;
  } legs[] = {
      {"latency", r.latency_s},   {"arithmetic", r.arith_s},
      {"control", r.control_s},   {"dram", r.dram_s},
      {"l2", r.l2_s},             {"read-only-cache", r.roc_s},
      {"shared-memory", r.shared_s}, {"global-atomics", r.gatomic_s},
  };
  r.seconds = 0.0;
  r.bottleneck = "latency";
  for (const auto& leg : legs) {
    if (leg.t > r.seconds) {
      r.seconds = leg.t;
      r.bottleneck = leg.name;
    }
  }
  if (r.seconds <= 0.0) r.seconds = 1e-12;  // degenerate empty launch

  r.bw_dram = static_cast<double>(stats.dram_bytes) / r.seconds;
  r.bw_l2 = static_cast<double>(stats.l2_bytes) / r.seconds;
  r.bw_roc = static_cast<double>(stats.roc_hit_bytes) / r.seconds;
  r.bw_shared = static_cast<double>(stats.shared_transactions) *
                static_cast<double>(spec.line_bytes) / r.seconds;
  return r;
}

}  // namespace tbs::perfmodel
