// Closed-form access-count models.
//
// Two complementary tools live here:
//
// 1. The paper's analytical equations (Sec. IV-B / IV-D, Eqs. 2–7) as
//    literal, documented functions. Unit tests check the simulator's
//    counters against them (up to the approximations the paper itself
//    makes, which are noted per function).
//
// 2. StatsPoly — exact polynomial extrapolation of measured counters.
//    For fixed block size B and histogram size H, every counter of every
//    2-BS kernel is a degree-2 polynomial in the block count M = N/B
//    (pairwise terms ~ M^2, tile/output terms ~ M, setup ~ 1). Fitting
//    the polynomial through three simulated sizes therefore reproduces
//    the counter *exactly* at any larger N (data-dependent factors such
//    as atomic-collision degrees are N-independent for a stationary input
//    distribution, so they are absorbed into the coefficients). This is
//    what lets the benches evaluate the paper's 2-million-point
//    configurations without simulating 4*10^12 pairs.
#pragma once

#include <array>
#include <cstdint>

#include "vgpu/stats.hpp"

namespace tbs::perfmodel {

// --- Paper equations (N points, B threads/block, M = N/B blocks, Hs output
// --- size). All counts are element accesses, as in the paper. ------------

/// Eq. 2: global-memory accesses of the Naive kernel:
/// N + sum_{i=1..N} (N - i)  =  N + N(N-1)/2.
double paper_eq2_naive_global(double n);

/// Eq. 3: global accesses of the tiled kernels (SHM-SHM, Register-SHM,
/// Register-ROC): N + sum_{i=1..M} (M - i) B.
double paper_eq3_tiled_global(double n, double b);

/// Eq. 4: shared accesses of SHM-SHM:
/// 2 sum_{i=1..M}(M-i)B^2 + 2 sum_{i=1..B}(B-i)M.
double paper_eq4_shmshm_shared(double n, double b);

/// Eq. 5: shared accesses of Register-SHM (half of Eq. 4):
/// sum_{i=1..M}(M-i)B^2 + sum_{i=1..B}(B-i)M.
double paper_eq5_regshm_shared(double n, double b);

/// Eq. 6: shared-atomic output-update cost of the privatized scheme,
/// sum_{i=1..N}(N + B - i) * C_shmAtomic, returned as an access count
/// (the paper multiplies by the latency; its N+B-i term over-counts the
/// tail by B per row — we return the expression as printed).
double paper_eq6_output_updates(double n, double b);

/// Eq. 7: reduction-stage accesses: Hs * (M * 3 + 1) element accesses
/// (M reads of private copies + M writes + ... as printed:
/// Hs[M(Cgw + Cshmr + Cgr) + Cgw]).
double paper_eq7_reduction_accesses(double n, double b, double hs);

// --- Counter extrapolation ------------------------------------------------

/// Degree-2 polynomial fit of every KernelStats counter in M = N/B.
/// Feed three measured (n, stats) samples with the same B (and H); call
/// predict() for any larger n. Fields that are launch-config echoes are
/// set directly rather than fitted.
class StatsPoly {
 public:
  /// ns must be strictly increasing, all multiples of the common block
  /// size; sample[i] must be the measured stats for ns[i].
  StatsPoly(const std::array<double, 3>& ns,
            const std::array<vgpu::KernelStats, 3>& samples);

  [[nodiscard]] vgpu::KernelStats predict(double n) const;

 private:
  std::array<double, 3> ns_;
  std::array<vgpu::KernelStats, 3> samples_;
};

}  // namespace tbs::perfmodel
