// Device specification for the simulated GPU.
//
// Defaults model the paper's testbed, an NVIDIA GTX Titan X (Maxwell,
// GM200). Latency constants are the ones the paper itself cites from
// micro-benchmarking studies [20][21]: ~350 cycles global memory, ~92 cycles
// read-only data cache, ~28 cycles shared memory.
#pragma once

#include <cstddef>
#include <string>

namespace tbs::vgpu {

/// Static hardware description; all latencies in core clock cycles, all
/// bandwidths in bytes per second.
struct DeviceSpec {
  std::string name = "sim-titan-x";

  // Compute organization.
  int sm_count = 24;               ///< GM200: 24 SMs
  int warp_size = 32;
  int max_threads_per_block = 1024;
  int max_threads_per_sm = 2048;   ///< 64 resident warps
  int max_blocks_per_sm = 32;
  std::size_t shared_mem_per_sm = 96 * 1024;     ///< paper Sec. III-A
  std::size_t shared_mem_per_block_cap = 48 * 1024;
  long regs_per_sm = 65536;

  double core_clock_hz = 1.0e9;
  /// Fraction of full occupancy below which throughput units (arith,
  /// shared port, tex) can no longer be kept fed: with long memory
  /// latencies per warp instruction, an SM needs most of its 64 resident
  /// warp slots filled before a unit saturates. Below this knee, unit
  /// throughput degrades proportionally — the mechanism behind the
  /// paper's Fig. 5 step function.
  double saturation_occupancy = 0.75;
  /// Sustained scalar-op issue rate per SM, in warp-ops per cycle (i.e. a
  /// warp-wide scalar op retires every 1/ipc cycles). 2.0 reflects the
  /// mul/add/special mix of distance kernels on Maxwell.
  double arith_ipc_per_sm = 2.0;
  /// Read-only-cache (texture) request throughput per SM, in warp-level
  /// segment requests per cycle. Maxwell's 4 tex units serve well under
  /// half the request rate of the 32-bank shared port — this is what makes
  /// Register-ROC the slowest cached 2-PCF kernel (paper Fig. 2) while
  /// Reg-ROC-Out still wins for SDH by moving tile traffic off the
  /// atomics-contended shared port (paper Fig. 4).
  double roc_requests_per_cycle = 0.4;
  /// L2 slices that can service atomics in parallel.
  int l2_slices = 24;
  /// L2-slice busy cycles per global atomic RMW.
  double l2_atomic_cycles = 2.0;

  // Latencies (cycles) — the paper's constants.
  double lat_global = 350.0;       ///< DRAM round trip
  double lat_l2 = 190.0;           ///< L2 hit
  double lat_roc = 92.0;           ///< read-only data cache hit
  double lat_shared = 28.0;        ///< shared memory
  double lat_global_atomic = 510.0;
  double lat_shared_atomic = 38.0;
  double lat_shuffle = 2.0;
  double lat_barrier = 4.0;
  /// Extra cycles per additional coalescing segment / bank-conflict replay /
  /// atomic serialization step.
  double extra_segment = 16.0;
  double extra_bank_conflict = 4.0;
  double extra_shared_atomic = 4.0;
  double extra_global_atomic = 180.0;
  /// Shared-port busy cycles per serialized shared-atomic pass: Maxwell
  /// implements shared atomics as lock / update / unlock sequences.
  double shared_atomic_port_passes = 4.0;

  // Bandwidths (bytes/sec), device aggregate.
  double bw_global = 336.5e9;      ///< Titan X DRAM
  double bw_l2 = 450.0e9;
  double bw_roc = 1.0e12;          ///< paper: ~1 TB/s
  double bw_shared = 3.0e12;       ///< paper: ~3 TB/s

  // Cache geometry for the functional cache simulators.
  std::size_t line_bytes = 128;
  std::size_t l2_bytes = 3 * 1024 * 1024;
  int l2_ways = 16;
  std::size_t roc_bytes_per_sm = 24 * 1024;
  int roc_ways = 8;
};

/// Kernel launch configuration (grid of blocks of threads + dynamic shared
/// memory per block), mirroring CUDA's <<<grid, block, shmem>>>.
struct LaunchConfig {
  int grid_dim = 1;
  int block_dim = 32;
  std::size_t shared_bytes = 0;
  /// Registers per thread, used only by the occupancy model.
  int regs_per_thread = 32;
};

}  // namespace tbs::vgpu
