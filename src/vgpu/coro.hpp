// Coroutine plumbing for simulated device kernels.
//
// A kernel is any callable returning KernelTask; the executor owns the
// coroutine handle and resumes it lane-by-lane. Each lane's coroutine is
// resumed by exactly one executor thread; under the async stream runtime
// different *blocks* may execute on different pool workers, but the blocks
// of a launch never share coroutine state, and the snapshot/replay contract
// in device.cpp keeps results deterministic either way.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace tbs::vgpu {

/// Handle to one simulated device thread (one coroutine per lane).
class KernelTask {
 public:
  struct promise_type {
    std::exception_ptr exception;

    KernelTask get_return_object() {
      return KernelTask(Handle::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  KernelTask() = default;
  explicit KernelTask(Handle h) : handle_(h) {}
  KernelTask(KernelTask&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  KernelTask& operator=(KernelTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  KernelTask(const KernelTask&) = delete;
  KernelTask& operator=(const KernelTask&) = delete;
  ~KernelTask() { destroy(); }

  [[nodiscard]] bool done() const { return !handle_ || handle_.done(); }

  /// Run the lane until its next suspension point (or completion), then
  /// rethrow anything the kernel body threw.
  void resume() {
    handle_.resume();
    if (handle_.done() && handle_.promise().exception)
      std::rethrow_exception(handle_.promise().exception);
  }

 private:
  void destroy() {
    if (handle_) handle_.destroy();
    handle_ = nullptr;
  }

  Handle handle_;
};

}  // namespace tbs::vgpu
