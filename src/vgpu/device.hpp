// Device — the top-level simulated GPU: owns the L2 / read-only cache
// simulators and runs kernel launches block by block, warp-lockstep.
#pragma once

#include <functional>

#include "vgpu/cache.hpp"
#include "vgpu/coro.hpp"
#include "vgpu/ctx.hpp"
#include "vgpu/spec.hpp"
#include "vgpu/stats.hpp"

namespace tbs::vgpu {

/// Factory invoked once per simulated thread; returns the lane's coroutine.
/// Typical use: a lambda capturing the kernel's buffers by reference.
using KernelBody = std::function<KernelTask(ThreadCtx&)>;

/// The simulated GPU. Deterministic and single-threaded: launches execute
/// blocks sequentially, but the *cost model* accounts for them as if they
/// ran concurrently across SMs (see perfmodel::KernelTimeModel).
class Device {
 public:
  explicit Device(DeviceSpec spec = DeviceSpec{});

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }

  /// Run a kernel over cfg.grid_dim blocks of cfg.block_dim threads.
  /// Returns the exact execution counters (the profiler view).
  ///
  /// Throws CheckError on launch misconfiguration, on kernel deadlock
  /// (barrier that can never be satisfied), and propagates any exception a
  /// kernel body throws.
  KernelStats launch(const LaunchConfig& cfg, const KernelBody& body);

  /// Drop all cached lines in L2 (e.g. between unrelated experiments).
  void flush_caches() { l2_.invalidate(); }

 private:
  DeviceSpec spec_;
  SetAssocCache l2_;
};

}  // namespace tbs::vgpu
