// Device — the top-level simulated GPU: owns the L2 / read-only cache
// simulators and runs kernel launches block by block, warp-lockstep.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "vgpu/cache.hpp"
#include "vgpu/coro.hpp"
#include "vgpu/ctx.hpp"
#include "vgpu/fault.hpp"
#include "vgpu/spec.hpp"
#include "vgpu/stats.hpp"

namespace tbs::vgpu {

class Stream;
class Event;

/// Factory invoked once per simulated thread; returns the lane's coroutine.
/// Typical use: a lambda capturing the kernel's buffers by reference.
using KernelBody = std::function<KernelTask(ThreadCtx&)>;

/// What a launch observer learns about one executed launch — the profiler
/// attachment point (obs::Profiler and the serve engine both hook it).
/// `stats` points at the launch's counters and is valid only for the
/// duration of the callback.
struct LaunchRecord {
  LaunchConfig cfg;
  const KernelStats* stats = nullptr;
  double wall_seconds = 0.0;      ///< host wall time spent simulating
  std::uint64_t launch_index = 0; ///< launch_count() after this launch
  bool pooled = false;            ///< ran via the async stream path
};

/// Per-launch callback. Invoked on the thread that drained the launch
/// (inline for Device::launch, the waiting thread for stream launches),
/// after the launch's counters are final and launch_count() is updated.
using LaunchObserver = std::function<void(const LaunchRecord&)>;

/// The simulated GPU. Launches are deterministic: every block executes
/// against a private snapshot of the L2 state taken at launch entry, and
/// block effects are replayed into the device in block-id order afterwards
/// — so counters are a pure function of (device state, config, body),
/// identical whether blocks run inline (`launch`) or on the async worker
/// pool (`launch_async` + Stream). The *cost model* accounts for blocks as
/// if they ran concurrently across SMs (see perfmodel::KernelTimeModel).
class Device {
 public:
  explicit Device(DeviceSpec spec = DeviceSpec{});

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }

  /// Run a kernel over cfg.grid_dim blocks of cfg.block_dim threads.
  /// Returns the exact execution counters (the profiler view).
  ///
  /// Throws CheckError on launch misconfiguration, on kernel deadlock
  /// (barrier that can never be satisfied), and propagates any exception a
  /// kernel body throws.
  KernelStats launch(const LaunchConfig& cfg, const KernelBody& body);

  /// Enqueue a launch on `stream` (which must be bound to this device) and
  /// return its completion Event. Configuration errors throw eagerly, here;
  /// execution happens when the stream drains, with blocks scheduled onto
  /// the shared worker pool. See stream.hpp for the determinism contract.
  Event launch_async(Stream& stream, const LaunchConfig& cfg,
                     KernelBody body);

  /// Drop all cached lines in L2 (e.g. between unrelated experiments).
  void flush_caches() { l2_.invalidate(); }

  /// Kernel launches executed so far (async launches count when they run,
  /// not when they enqueue). The plan cache's "no recalibration" tests key
  /// off this counter.
  [[nodiscard]] std::uint64_t launch_count() const noexcept {
    return launches_done_;
  }

  /// Install (or, with nullptr, remove) the per-launch profiler hook. One
  /// observer per device; installing replaces the previous one. The
  /// observer runs with the same threading discipline as the launch itself
  /// (a Device is driven from one host thread at a time).
  void set_launch_observer(LaunchObserver observer) {
    observer_ = std::move(observer);
  }
  [[nodiscard]] bool has_launch_observer() const noexcept {
    return static_cast<bool>(observer_);
  }

  /// Install a chaos schedule on this device: every subsequent launch
  /// (inline or async) runs through a FaultInjector executing `plan`.
  /// A plan with no knobs enabled removes injection. Injected failures
  /// leave the device bit-identical to never having launched (no L2
  /// replay, no launch_count() bump, no observer callback).
  void set_fault_plan(const FaultPlan& plan) {
    fault_ = plan.enabled() ? std::make_unique<FaultInjector>(plan) : nullptr;
  }

  /// The active injector (nullptr when no faults are configured) — tests
  /// and chaos harnesses read its FaultStats.
  [[nodiscard]] const FaultInjector* fault_injector() const noexcept {
    return fault_.get();
  }
  /// Mutable access for backends that consume the silent-corruption
  /// decision stream (FaultInjector::next_silent advances its own RNG).
  [[nodiscard]] FaultInjector* fault_injector() noexcept {
    return fault_.get();
  }

 private:
  friend class Stream;

  void validate_launch(const LaunchConfig& cfg) const;
  KernelStats execute_launch(const LaunchConfig& cfg, const KernelBody& body,
                             bool pooled);

  DeviceSpec spec_;
  SetAssocCache l2_;
  std::uint64_t launches_done_ = 0;
  LaunchObserver observer_;
  std::unique_ptr<FaultInjector> fault_;  ///< nullptr = no chaos
};

}  // namespace tbs::vgpu
