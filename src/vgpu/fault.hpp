// Fault injection — a deterministic chaos layer for the simulated GPU.
//
// Production pair-statistics services treat device failure as routine:
// launches abort, streams stall, ECC trips. The serve layer's resilience
// machinery (retry, circuit breaker, degraded plans) can only be trusted if
// it is exercised against exactly those failures, reproducibly. A FaultPlan
// describes *when* a device misbehaves — seed-driven transient launch
// failures, stream stalls with a configurable delay, ECC-style counter
// corruption, fail-N-times-then-succeed schedules, and full device loss —
// and a FaultInjector executes the plan at the launch boundary.
//
// Design rules the resilience layer depends on:
//   * Determinism: every launch attempt consumes exactly three RNG draws,
//     so the fault sequence is a pure function of (seed, attempt ordinal)
//     regardless of which knobs are enabled.
//   * No partial effects: an injected fault fires either before the kernel
//     runs or before its side effects are replayed into the device L2 — a
//     failed launch leaves the device bit-identical to never having
//     launched, so a retry reproduces the fault-free result exactly.
//   * Typed errors: every injected failure is a vgpu::DeviceError subclass
//     carrying `transient()`, which is what the retry policy keys on.
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

#include "common/rng.hpp"
#include "vgpu/stats.hpp"

namespace tbs::vgpu {

/// Base of every injected (or, in the future, organic) device failure.
/// `transient()` tells the retry layer whether re-running the same launch
/// can plausibly succeed.
class DeviceError : public std::runtime_error {
 public:
  DeviceError(const std::string& msg, bool transient)
      : std::runtime_error(msg), transient_(transient) {}
  [[nodiscard]] bool transient() const noexcept { return transient_; }

 private:
  bool transient_;
};

/// A launch that failed to start (spurious driver/launch error). Retryable.
class TransientLaunchError : public DeviceError {
 public:
  explicit TransientLaunchError(const std::string& msg)
      : DeviceError(msg, /*transient=*/true) {}
};

/// ECC detected an uncorrectable flip in the launch's counters/buffers.
/// The launch's results are discarded; a retry re-runs cleanly.
class EccError : public DeviceError {
 public:
  explicit EccError(const std::string& msg)
      : DeviceError(msg, /*transient=*/true) {}
};

/// The device fell off the bus. Retrying on the same device is pointless.
class DeviceLostError : public DeviceError {
 public:
  explicit DeviceLostError(const std::string& msg)
      : DeviceError(msg, /*transient=*/false) {}
};

/// Declarative chaos schedule for one Device or Stream. All probabilities
/// are per launch attempt and independent; the default plan injects
/// nothing.
struct FaultPlan {
  std::uint64_t seed = 0xFA017ULL;  ///< drives every probabilistic knob

  /// P(attempt throws TransientLaunchError before executing).
  double transient_rate = 0.0;
  /// P(attempt stalls `stall_seconds` of host wall time before executing) —
  /// the straggler simulation; the launch still succeeds.
  double stall_rate = 0.0;
  double stall_seconds = 0.0;
  /// P(attempt completes, then its counters are corrupted and EccError is
  /// thrown before any device-state replay).
  double corrupt_rate = 0.0;
  /// Deterministic schedule: the first N attempts throw
  /// TransientLaunchError regardless of the rates, then the schedule is
  /// spent. Composable with the probabilistic knobs.
  std::uint32_t fail_first_n = 0;
  /// Every attempt throws DeviceLostError (a permanently failing device).
  bool device_lost = false;

  /// P(attempt launches against a staged buffer with one flipped mantissa
  /// bit) — a *silent* fault: nothing throws, the kernel simply computes
  /// over slightly-wrong coordinates. Only a redundant re-execution on an
  /// independent backend can catch it (totals still conserve).
  double silent_staged_rate = 0.0;
  /// P(attempt completes and then one bit of the result payload — a
  /// histogram bucket or the pair count — is flipped after the fact).
  /// Silent, but violates total-count conservation, so the invariant
  /// layer can catch it without re-execution.
  double silent_result_rate = 0.0;

  [[nodiscard]] bool enabled() const noexcept {
    return transient_rate > 0.0 || stall_rate > 0.0 || corrupt_rate > 0.0 ||
           fail_first_n > 0 || device_lost || silent_enabled();
  }

  [[nodiscard]] bool silent_enabled() const noexcept {
    return silent_staged_rate > 0.0 || silent_result_rate > 0.0;
  }
};

/// What an injector has done so far (one consistent snapshot).
struct FaultStats {
  std::uint64_t attempts = 0;    ///< launch attempts seen
  std::uint64_t transients = 0;  ///< TransientLaunchError (rate-driven)
  std::uint64_t scheduled = 0;   ///< TransientLaunchError (fail_first_n)
  std::uint64_t stalls = 0;
  std::uint64_t corruptions = 0;  ///< EccError
  std::uint64_t lost = 0;         ///< DeviceLostError
  std::uint64_t silent_staged = 0;  ///< silent staged-buffer bit flips
  std::uint64_t silent_result = 0;  ///< silent result-payload bit flips

  /// Loud faults only — silent corruptions never throw, so they are not
  /// part of the thrown-fault count the resilience tests key on.
  [[nodiscard]] std::uint64_t faults() const noexcept {
    return transients + scheduled + corruptions + lost;
  }

  [[nodiscard]] std::uint64_t silent() const noexcept {
    return silent_staged + silent_result;
  }
};

/// The silent-corruption decision for one backend-level launch.
enum class SilentFault { None, Staged, Result };

/// Executes a FaultPlan at the launch boundary. Thread-safe (the owning
/// Device may be driven from several serialized worker threads over its
/// lifetime). Hook order per attempt:
///   on_launch_begin()  — may stall, may throw; also pre-draws the
///                        corruption decision so every attempt consumes a
///                        fixed number of RNG draws.
///   on_launch_stats()  — called with the finished counters *before* the
///                        device replays side effects; may corrupt one
///                        counter and throw EccError.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan)
      : plan_(plan), rng_(plan.seed), silent_rng_(plan.seed ^ kSilentSalt) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Launch-entry hook: sleeps on a stall, then throws on a scheduled /
  /// transient / device-lost fault.
  void on_launch_begin();

  /// Post-execution hook: when the pre-drawn corruption decision fired,
  /// flips one bit of one counter in `stats` and throws EccError naming
  /// it. Must run before the launch's effects are replayed into the device.
  void on_launch_stats(KernelStats& stats);

  /// Draws the silent-corruption decision for one backend-level launch.
  /// Uses a second RNG stream (seed ^ salt) with a fixed two draws per
  /// call, so the loud-fault sequence above — pinned at exactly three
  /// draws per attempt — is byte-identical whether or not silent faults
  /// are configured. Staged wins over Result when both fire.
  [[nodiscard]] SilentFault next_silent();

  [[nodiscard]] FaultStats stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  static constexpr std::uint64_t kSilentSalt = 0x51137F4417ULL;

  mutable std::mutex mu_;
  FaultPlan plan_;
  Rng rng_;                      ///< under mu_
  Rng silent_rng_;               ///< under mu_; independent silent stream
  FaultStats stats_;             ///< under mu_
  std::uint32_t schedule_left_ = 0;  ///< initialized lazily from the plan
  bool schedule_init_ = false;
  bool pending_corrupt_ = false;  ///< drawn at begin, fired at stats
};

}  // namespace tbs::vgpu
