// Set-associative cache simulator used for the L2 and read-only data caches.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace tbs::vgpu {

/// LRU set-associative cache over byte addresses. Functional only: tracks
/// presence of cache lines, not their contents (data always lives in host
/// memory; the cache decides which latency/traffic bucket an access hits).
class SetAssocCache {
 public:
  /// Build a cache of `size_bytes` capacity with `ways` lines per set and
  /// `line_bytes` line size. Set count is rounded down to a power of two.
  SetAssocCache(std::size_t size_bytes, int ways, std::size_t line_bytes)
      : line_bytes_(line_bytes), ways_(ways) {
    check(line_bytes > 0 && (line_bytes & (line_bytes - 1)) == 0,
          "cache line size must be a power of two");
    check(ways > 0, "cache needs at least one way");
    std::size_t sets = size_bytes / (static_cast<std::size_t>(ways) *
                                     line_bytes);
    if (sets == 0) sets = 1;
    while (sets & (sets - 1)) sets &= sets - 1;  // round down to pow2
    set_mask_ = sets - 1;
    lines_.assign(sets * static_cast<std::size_t>(ways), kInvalid);
    stamp_.assign(lines_.size(), 0);
  }

  /// Probe (and on miss, fill) the line containing `addr`.
  /// Returns true on hit.
  bool access(std::uintptr_t addr) {
    const std::uint64_t tag = addr / line_bytes_;
    const std::size_t set = static_cast<std::size_t>(tag) & set_mask_;
    const std::size_t base = set * static_cast<std::size_t>(ways_);
    ++tick_;
    std::size_t victim = base;
    std::uint64_t oldest = stamp_[base];
    for (int w = 0; w < ways_; ++w) {
      const std::size_t idx = base + static_cast<std::size_t>(w);
      if (lines_[idx] == tag) {
        stamp_[idx] = tick_;
        ++hits_;
        return true;
      }
      if (stamp_[idx] < oldest) {
        oldest = stamp_[idx];
        victim = idx;
      }
    }
    lines_[victim] = tag;
    stamp_[victim] = tick_;
    ++misses_;
    return false;
  }

  /// Forget all cached lines (counters are preserved).
  void invalidate() {
    std::fill(lines_.begin(), lines_.end(), kInvalid);
    std::fill(stamp_.begin(), stamp_.end(), std::uint64_t{0});
  }

  [[nodiscard]] std::size_t line_bytes() const noexcept { return line_bytes_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};

  std::size_t line_bytes_;
  int ways_;
  std::size_t set_mask_ = 0;
  std::vector<std::uint64_t> lines_;
  std::vector<std::uint64_t> stamp_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace tbs::vgpu
