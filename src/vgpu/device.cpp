// Warp-lockstep execution engine.
//
// Scheduling model: every lane is a coroutine. A scheduler pass over each
// warp (a) resumes lanes that have no pending op until they suspend or
// finish, then (b) issues each *kind-group* of pending non-barrier ops as
// one SIMT instruction: coalescing analysis for global ops, bank-conflict
// analysis for shared ops, address-collision serialization for atomics, and
// staging exchange for shuffles. Barriers release only when every live lane
// of the block has arrived. A warp's clock advances by the charged cost of
// each instruction it issues plus the max-over-lanes arithmetic between
// suspension points — so divergence (lanes with longer loops) lengthens the
// warp's serial time exactly as it does on real SIMT hardware.
// Launch semantics (shared by Device::launch and the async stream path):
// every block executes against a private copy of the L2 state taken at
// launch entry — on real hardware blocks race, so no block may depend on
// another's fills — and each block logs its device-visible side effects
// (unique L2 lines and atomic lines, in first-touch order) into a ledger.
// After all blocks finish, ledgers are replayed into the device L2 and the
// counters merged in block-id order. The result is a pure function of
// (device state, config, body): bit-identical whether blocks ran inline or
// on the worker pool, which is the contract the stream tests pin down.
#include "vgpu/device.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <exception>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "common/error.hpp"
#include "cpubase/thread_pool.hpp"
#include "vgpu/stream.hpp"

namespace tbs::vgpu {

namespace {

/// Per-block record of device-visible side effects, replayed in block-id
/// order after all blocks finish (see the launch-semantics note above).
struct BlockLedger {
  std::vector<std::uintptr_t> l2_lines;      ///< unique lines, first touch
  std::vector<std::uintptr_t> atomic_lines;  ///< unique atomic lines
};

/// One simulated thread: its context (stable address — coroutine captures
/// a reference) plus its coroutine handle.
struct Lane {
  ThreadCtx ctx;
  KernelTask task;
  bool done = false;
};

/// Gathered view of one warp during a launch.
struct WarpRunner {
  WarpState state;
  int first_lane = 0;
  int lane_count = 0;
};

/// Scratch vector of lane indices pending the same op kind.
using LaneGroup = std::array<int, 32>;

class BlockExecutor {
 public:
  BlockExecutor(const DeviceSpec& spec, const LaunchConfig& cfg,
                SetAssocCache& l2, KernelStats& stats, BlockLedger& ledger)
      : spec_(spec),
        cfg_(cfg),
        l2_(l2),
        stats_(stats),
        ledger_(ledger),
        roc_(spec.roc_bytes_per_sm, spec.roc_ways, spec.line_bytes),
        shared_arena_(cfg.shared_bytes) {}

  void run(int block_id, const KernelBody& body) {
    setup(block_id, body);

    while (live_ > 0) {
      bool progressed = false;
      for (auto& warp : warps_) {
        progressed |= step_warp(warp);
      }
      if (try_release_barrier()) progressed = true;
      check(progressed || live_ == 0,
            "vgpu deadlock: no lane can make progress (unsatisfiable "
            "barrier?)");
    }

    // Flush per-warp accounting into the launch stats.
    double block_cycles = 0.0;
    for (auto& warp : warps_) {
      warp.state.clock += warp.state.tail_arith_max;
      stats_.arith_warp_cycles += warp.state.tail_arith_max;
      stats_.phase_cycles[warp.state.cur_phase] +=
          warp.state.clock - warp.state.phase_start_clock;
      stats_.total_warp_cycles += warp.state.clock;
      block_cycles = std::max(block_cycles, warp.state.clock);
    }
    stats_.max_block_cycles = std::max(stats_.max_block_cycles, block_cycles);
    lanes_.clear();
    warps_.clear();
  }

 private:
  void setup(int block_id, const KernelBody& body) {
    const int b = cfg_.block_dim;
    const int warp_count = (b + spec_.warp_size - 1) / spec_.warp_size;
    warps_.assign(static_cast<std::size_t>(warp_count), WarpRunner{});
    lanes_ = std::vector<Lane>(static_cast<std::size_t>(b));
    std::fill(shared_arena_.begin(), shared_arena_.end(), std::byte{0});
    roc_.invalidate();  // fresh block ~ fresh SM residency (conservative)

    for (int w = 0; w < warp_count; ++w) {
      warps_[w].first_lane = w * spec_.warp_size;
      warps_[w].lane_count =
          std::min(spec_.warp_size, b - warps_[w].first_lane);
    }
    for (int t = 0; t < b; ++t) {
      Lane& lane = lanes_[static_cast<std::size_t>(t)];
      ThreadCtx& ctx = lane.ctx;
      ctx.thread_id = t;
      ctx.block_id = block_id;
      ctx.block_dim = b;
      ctx.grid_dim = cfg_.grid_dim;
      ctx.lane = t % spec_.warp_size;
      ctx.warp = &warps_[static_cast<std::size_t>(t / spec_.warp_size)].state;
      ctx.shared_base = shared_arena_.data();
      ctx.shared_size = shared_arena_.size();
      ctx.shared_arena_addr =
          reinterpret_cast<std::uintptr_t>(shared_arena_.data());
      ctx.phase_cycles = &stats_.phase_cycles;
      lane.task = body(ctx);
    }
    live_ = b;
  }

  /// Resume lanes with no pending op; returns true if any lane advanced.
  bool fill_pending(WarpRunner& warp) {
    bool advanced = false;
    for (int i = 0; i < warp.lane_count; ++i) {
      Lane& lane = lanes_[static_cast<std::size_t>(warp.first_lane + i)];
      if (lane.done || lane.ctx.has_pending) continue;
      lane.task.resume();
      advanced = true;
      if (lane.task.done()) {
        lane.done = true;
        --live_;
        // Tail arithmetic executed after the lane's last suspension.
        warp.state.tail_arith_max =
            std::max(warp.state.tail_arith_max,
                     lane.ctx.arith_ops - lane.ctx.arith_mark +
                         lane.ctx.control_ops - lane.ctx.control_mark);
        stats_.arith_ops += lane.ctx.arith_ops - lane.ctx.arith_mark;
        stats_.control_ops += lane.ctx.control_ops - lane.ctx.control_mark;
        lane.ctx.arith_mark = lane.ctx.arith_ops;
        lane.ctx.control_mark = lane.ctx.control_ops;
      }
    }
    return advanced;
  }

  /// One scheduler step for a warp. Returns true if anything progressed.
  bool step_warp(WarpRunner& warp) {
    bool progressed = fill_pending(warp);

    // Partition live lanes by pending kind.
    std::array<LaneGroup, 10> groups{};
    std::array<int, 10> group_size{};
    int pending_total = 0;
    int barrier_count = 0;
    for (int i = 0; i < warp.lane_count; ++i) {
      const int idx = warp.first_lane + i;
      const Lane& lane = lanes_[static_cast<std::size_t>(idx)];
      if (lane.done || !lane.ctx.has_pending) continue;
      ++pending_total;
      const auto k = static_cast<std::size_t>(lane.ctx.pending.kind);
      if (lane.ctx.pending.kind == OpKind::Barrier) {
        ++barrier_count;
        continue;
      }
      groups[k][static_cast<std::size_t>(group_size[k])] = idx;
      ++group_size[k];
    }
    if (pending_total == 0) return progressed;

    warp.state.at_barrier =
        (barrier_count == pending_total && barrier_count > 0);

    // Count live lanes of this warp (shuffle completeness check).
    int warp_live = 0;
    for (int i = 0; i < warp.lane_count; ++i)
      if (!lanes_[static_cast<std::size_t>(warp.first_lane + i)].done)
        ++warp_live;

    // Issue every non-barrier kind group as one SIMT instruction. A shuffle
    // only issues once *every* live lane of the warp has arrived at it —
    // lanes still finishing a predicated side path (e.g. an atomic between
    // two shuffles) are given time to catch up; if they can never arrive the
    // block-level deadlock check fires.
    for (std::size_t k = 0; k < groups.size(); ++k) {
      if (group_size[k] == 0) continue;
      if (static_cast<OpKind>(k) == OpKind::Shuffle &&
          group_size[k] < warp_live)
        continue;
      issue(warp, static_cast<OpKind>(k), groups[k],
            static_cast<std::size_t>(group_size[k]));
      progressed = true;
    }
    return progressed;
  }

  /// Release the block barrier if every live lane has arrived.
  bool try_release_barrier() {
    int waiting = 0;
    for (const auto& lane : lanes_) {
      if (lane.done) continue;
      if (lane.ctx.has_pending && lane.ctx.pending.kind == OpKind::Barrier)
        ++waiting;
    }
    if (live_ == 0 || waiting < live_) return false;

    // Fold each warp's pre-barrier arithmetic (max over its live lanes)
    // into its clock before aligning all warps to the block-wide maximum.
    for (auto& warp : warps_) {
      pending_arith_max_ = 0.0;
      pending_control_max_ = 0.0;
      for (int i = 0; i < warp.lane_count; ++i) {
        Lane& lane = lanes_[static_cast<std::size_t>(warp.first_lane + i)];
        if (!lane.done) charge_arith_for_lane(lane);
      }
      warp.state.clock += pending_arith_max_ + pending_control_max_;
      stats_.arith_warp_cycles += pending_arith_max_;
      stats_.control_warp_cycles += pending_control_max_;
    }

    double block_clock = 0.0;
    for (const auto& warp : warps_)
      block_clock = std::max(block_clock, warp.state.clock);
    block_clock += spec_.lat_barrier;
    for (auto& warp : warps_) {
      warp.state.clock = block_clock;
      warp.state.at_barrier = false;
    }
    for (auto& lane : lanes_) {
      if (lane.done) continue;
      lane.ctx.has_pending = false;
      ++stats_.barriers;
    }
    return true;
  }

  /// Fold a lane's un-charged arithmetic into the running max-over-lanes
  /// accumulator (SIMD issue semantics); caller adds it to the warp clock.
  void charge_arith_for_lane(Lane& lane) {
    const double delta = lane.ctx.arith_ops - lane.ctx.arith_mark;
    lane.ctx.arith_mark = lane.ctx.arith_ops;
    stats_.arith_ops += delta;
    pending_arith_max_ = std::max(pending_arith_max_, delta);
    const double cdelta = lane.ctx.control_ops - lane.ctx.control_mark;
    lane.ctx.control_mark = lane.ctx.control_ops;
    stats_.control_ops += cdelta;
    pending_control_max_ = std::max(pending_control_max_, cdelta);
  }

  void issue(WarpRunner& warp, OpKind kind, const LaneGroup& lanes,
             std::size_t n) {
    // Arithmetic executed since each lane's previous instruction, folded as
    // max over the participating lanes (SIMD issue).
    pending_arith_max_ = 0.0;
    pending_control_max_ = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      charge_arith_for_lane(lanes_[static_cast<std::size_t>(lanes[i])]);
    warp.state.clock += pending_arith_max_ + pending_control_max_;
    stats_.arith_warp_cycles += pending_arith_max_;
    stats_.control_warp_cycles += pending_control_max_;

    stats_.warp_instructions += 1;
    stats_.active_lane_slots += n;
    stats_.possible_lane_slots += static_cast<std::uint64_t>(spec_.warp_size);

    double cost = 0.0;
    switch (kind) {
      case OpKind::GlobalLoad:
      case OpKind::GlobalStore:
        cost = issue_global(lanes, n, /*through_roc=*/false);
        if (kind == OpKind::GlobalLoad)
          stats_.global_loads += n;
        else
          stats_.global_stores += n;
        break;
      case OpKind::RocLoad:
        cost = issue_global(lanes, n, /*through_roc=*/true);
        stats_.roc_loads += n;
        break;
      case OpKind::SharedLoad:
      case OpKind::SharedStore:
        cost = issue_shared(lanes, n);
        if (kind == OpKind::SharedLoad)
          stats_.shared_loads += n;
        else
          stats_.shared_stores += n;
        break;
      case OpKind::SharedAtomic:
        cost = issue_atomic(lanes, n, /*global=*/false);
        stats_.shared_atomics += n;
        break;
      case OpKind::GlobalAtomic:
        cost = issue_atomic(lanes, n, /*global=*/true);
        stats_.global_atomics += n;
        break;
      case OpKind::Shuffle:
        cost = issue_shuffle(warp, lanes, n);
        stats_.shuffles += n;
        break;
      case OpKind::Barrier:
      case OpKind::None:
        fail("issue(): unexpected op kind");
    }
    warp.state.clock += cost;

    // Resume happens lazily: clearing has_pending lets fill_pending advance
    // the lane on the next pass (await_resume then performs data movement).
    for (std::size_t i = 0; i < n; ++i)
      lanes_[static_cast<std::size_t>(lanes[i])].ctx.has_pending = false;
  }

  /// Coalescing + cache analysis for global-path ops. Returns cycle cost.
  double issue_global(const LaneGroup& lanes, std::size_t n,
                      bool through_roc) {
    // Collect unique cache-line segments across all addresses in the group.
    std::array<std::uintptr_t, 96> segs{};
    std::size_t seg_count = 0;
    std::uint64_t useful_bytes = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const PendingOp& op =
          lanes_[static_cast<std::size_t>(lanes[i])].ctx.pending;
      useful_bytes +=
          static_cast<std::uint64_t>(op.n_addr) * op.elem_bytes;
      for (int a = 0; a < op.n_addr; ++a) {
        const std::uintptr_t seg = op.addr[a] / spec_.line_bytes;
        bool found = false;
        for (std::size_t s = 0; s < seg_count; ++s) {
          if (segs[s] == seg) {
            found = true;
            break;
          }
        }
        if (!found && seg_count < segs.size()) segs[seg_count++] = seg;
      }
    }
    bool worst_is_dram = false;
    bool any_roc_miss = false;
    for (std::size_t s = 0; s < seg_count; ++s) {
      const std::uintptr_t line_addr = segs[s] * spec_.line_bytes;
      if (through_roc) {
        // Every segment request occupies a tex-unit slot, hit or miss;
        // hits are served at request granularity (useful bytes), only
        // misses move whole lines on the L2/DRAM path below.
        ++stats_.roc_port_cycles;
        if (roc_.access(line_addr)) {
          stats_.roc_hit_bytes += useful_bytes / seg_count;
          continue;
        }
        any_roc_miss = true;
      }
      // L2 path (direct global access, or ROC miss fill).
      record_l2_line(line_addr);
      if (l2_.access(line_addr)) {
        stats_.l2_bytes += spec_.line_bytes;
      } else {
        stats_.dram_bytes += spec_.line_bytes;
        worst_is_dram = true;
      }
    }
    stats_.global_transactions += seg_count;

    double base;
    if (through_roc)
      base = any_roc_miss ? (worst_is_dram ? spec_.lat_global : spec_.lat_l2)
                          : spec_.lat_roc;
    else
      base = worst_is_dram ? spec_.lat_global : spec_.lat_l2;
    return base +
           static_cast<double>(seg_count > 0 ? seg_count - 1 : 0) *
               spec_.extra_segment;
  }

  /// Bank-conflict analysis for shared ops. Returns cycle cost.
  double issue_shared(const LaneGroup& lanes, std::size_t n) {
    // For multi-address (point) ops, each address slot is a separate
    // 32-lane access; conflicts are computed per slot.
    int max_slots = 0;
    std::uint64_t bytes = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const PendingOp& op =
          lanes_[static_cast<std::size_t>(lanes[i])].ctx.pending;
      max_slots = std::max(max_slots, static_cast<int>(op.n_addr));
      bytes += static_cast<std::uint64_t>(op.n_addr) * op.elem_bytes;
    }
    stats_.shared_bytes += bytes;

    std::uint64_t transactions = 0;
    for (int slot = 0; slot < max_slots; ++slot) {
      // words[bank] -> set of distinct word addresses (tiny linear scan).
      std::array<std::array<std::uintptr_t, 32>, 32> words{};
      std::array<int, 32> per_bank{};
      int degree = 1;
      for (std::size_t i = 0; i < n; ++i) {
        const PendingOp& op =
            lanes_[static_cast<std::size_t>(lanes[i])].ctx.pending;
        if (slot >= op.n_addr) continue;
        const std::uintptr_t word = op.addr[static_cast<std::size_t>(slot)] / 4;
        const auto bank = static_cast<std::size_t>(word % 32);
        bool dup = false;
        for (int w = 0; w < per_bank[bank]; ++w) {
          if (words[bank][static_cast<std::size_t>(w)] == word) {
            dup = true;  // same word: broadcast, no extra transaction
            break;
          }
        }
        if (!dup && per_bank[bank] < 32) {
          words[bank][static_cast<std::size_t>(per_bank[bank])] = word;
          ++per_bank[bank];
          degree = std::max(degree, per_bank[bank]);
        }
      }
      transactions += static_cast<std::uint64_t>(degree);
    }
    stats_.shared_transactions += transactions;
    const std::uint64_t extra =
        transactions - static_cast<std::uint64_t>(max_slots);
    stats_.bank_conflict_extra += extra;
    return spec_.lat_shared +
           static_cast<double>(extra +
                               static_cast<std::uint64_t>(max_slots) - 1) *
               spec_.extra_bank_conflict;
  }

  /// Address-collision serialization for atomics. Returns cycle cost.
  double issue_atomic(const LaneGroup& lanes, std::size_t n, bool global) {
    std::array<std::uintptr_t, 32> addrs{};
    std::array<int, 32> hits{};
    std::size_t unique = 0;
    std::uint64_t bytes = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const PendingOp& op =
          lanes_[static_cast<std::size_t>(lanes[i])].ctx.pending;
      bytes += op.elem_bytes;
      const std::uintptr_t a = op.addr[0];
      bool found = false;
      for (std::size_t u = 0; u < unique; ++u) {
        if (addrs[u] == a) {
          ++hits[u];
          found = true;
          break;
        }
      }
      if (!found && unique < addrs.size()) {
        addrs[unique] = a;
        hits[unique] = 1;
        ++unique;
      }
    }
    int max_collisions = 1;
    std::uint64_t extra = 0;
    for (std::size_t u = 0; u < unique; ++u) {
      max_collisions = std::max(max_collisions, hits[u]);
      extra += static_cast<std::uint64_t>(hits[u] - 1);
    }
    stats_.atomic_collision_extra += extra;

    if (global) {
      // Global atomics resolve in L2; each lane's RMW occupies its line's
      // L2 slice — a device-wide serialization resource tracked separately
      // from per-warp latency.
      for (std::size_t u = 0; u < unique; ++u) {
        const std::uintptr_t line =
            addrs[u] / spec_.line_bytes * spec_.line_bytes;
        record_l2_line(line);
        if (l2_.access(line))
          stats_.l2_bytes += spec_.line_bytes;
        else
          stats_.dram_bytes += spec_.line_bytes;
        if (atomic_seen_.insert(line).second)
          ledger_.atomic_lines.push_back(line);
      }
      stats_.global_transactions += unique;
      stats_.global_atomic_port_cycles +=
          static_cast<double>(n) * spec_.l2_atomic_cycles;
      return spec_.lat_global_atomic +
             static_cast<double>(max_collisions - 1) *
                 spec_.extra_global_atomic;
    }
    stats_.shared_bytes += bytes;
    // Port cycles: max_collisions serialized passes, each a lock/update/
    // unlock RMW sequence through the banked port.
    stats_.shared_transactions += static_cast<std::uint64_t>(
        spec_.shared_atomic_port_passes *
        static_cast<double>(max_collisions));
    return spec_.lat_shared_atomic +
           static_cast<double>(max_collisions - 1) *
               spec_.extra_shared_atomic;
  }

  /// Warp-wide register exchange. All live lanes must participate.
  double issue_shuffle(WarpRunner& warp, const LaneGroup& /*lanes*/,
                       std::size_t n) {
    int live = 0;
    for (int i = 0; i < warp.lane_count; ++i)
      if (!lanes_[static_cast<std::size_t>(warp.first_lane + i)].done)
        ++live;
    check(static_cast<int>(n) == live,
          "shuffle issued while some live lanes of the warp are not "
          "participating (divergent shuffle is undefined)");
    // Snapshot staging so later deposits don't race earlier reads.
    std::copy(std::begin(warp.state.shfl_staging),
              std::end(warp.state.shfl_staging),
              std::begin(warp.state.shfl_result));
    return spec_.lat_shuffle;
  }

  /// Log a line's first touch by this block for post-launch L2 replay.
  void record_l2_line(std::uintptr_t line_addr) {
    if (l2_seen_.insert(line_addr).second)
      ledger_.l2_lines.push_back(line_addr);
  }

  const DeviceSpec& spec_;
  const LaunchConfig& cfg_;
  SetAssocCache& l2_;
  KernelStats& stats_;
  BlockLedger& ledger_;
  SetAssocCache roc_;
  std::unordered_set<std::uintptr_t> l2_seen_;
  std::unordered_set<std::uintptr_t> atomic_seen_;
  std::vector<std::byte> shared_arena_;
  std::vector<Lane> lanes_;
  std::vector<WarpRunner> warps_;
  int live_ = 0;
  double pending_arith_max_ = 0.0;
  double pending_control_max_ = 0.0;
};

/// Pool workers executing the blocks of draining async launches. Created
/// once, lazily; size requested via set_async_worker_count before first use.
unsigned& requested_async_workers() {
  static unsigned count = 0;  // 0 = hardware concurrency
  return count;
}

cpubase::ThreadPool& exec_pool() {
  static cpubase::ThreadPool pool(requested_async_workers());
  return pool;
}

/// The pool supports one parallel_for at a time; serialize pooled launches.
std::mutex g_pool_mutex;

}  // namespace

void set_async_worker_count(unsigned n) { requested_async_workers() = n; }

unsigned async_worker_count() { return exec_pool().size(); }

Device::Device(DeviceSpec spec)
    : spec_(std::move(spec)),
      l2_(spec_.l2_bytes, spec_.l2_ways, spec_.line_bytes) {}

void Device::validate_launch(const LaunchConfig& cfg) const {
  check(cfg.grid_dim > 0, "launch: grid_dim must be positive");
  check(cfg.block_dim > 0 &&
            cfg.block_dim <= spec_.max_threads_per_block,
        "launch: block_dim out of range");
  check(cfg.shared_bytes <= spec_.shared_mem_per_block_cap,
        "launch: shared_bytes exceeds per-block cap");
}

KernelStats Device::launch(const LaunchConfig& cfg, const KernelBody& body) {
  return execute_launch(cfg, body, /*pooled=*/false);
}

Event Device::launch_async(Stream& stream, const LaunchConfig& cfg,
                           KernelBody body) {
  check(&stream.device() == this,
        "launch_async: stream is bound to a different device");
  validate_launch(cfg);
  auto state = std::make_shared<detail::EventState>();
  stream.queue_.push_back(Stream::Record{cfg, std::move(body), state});
  return Event{std::move(state), &stream};
}

KernelStats Device::execute_launch(const LaunchConfig& cfg,
                                   const KernelBody& body, bool pooled) {
  validate_launch(cfg);
  // Chaos hook: may stall the launch or throw a typed DeviceError before
  // anything executes — the device is left exactly as it was.
  if (fault_) fault_->on_launch_begin();
  const auto wall_start = std::chrono::steady_clock::now();

  const int grid = cfg.grid_dim;
  std::vector<KernelStats> block_stats(static_cast<std::size_t>(grid));
  std::vector<BlockLedger> ledgers(static_cast<std::size_t>(grid));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(grid));

  // Worker exceptions must not escape parallel_for (the pool does not catch
  // them); the lowest-block-id error is rethrown after the join.
  const auto run_block = [&](int b, SetAssocCache& shard) {
    const auto i = static_cast<std::size_t>(b);
    try {
      shard = l2_;  // launch-entry snapshot (see note at top of file)
      BlockExecutor exec(spec_, cfg, shard, block_stats[i], ledgers[i]);
      exec.run(b, body);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  if (pooled && grid > 1) {
    cpubase::ThreadPool& pool = exec_pool();
    std::scoped_lock lock(g_pool_mutex);
    std::vector<SetAssocCache> shards(pool.size(), l2_);
    cpubase::parallel_for(
        pool, 0, static_cast<std::size_t>(grid), cpubase::Schedule::Dynamic,
        [&](unsigned worker, std::size_t lo, std::size_t hi) {
          for (std::size_t b = lo; b < hi; ++b)
            run_block(static_cast<int>(b), shards[worker]);
        },
        /*chunk=*/1);
  } else {
    SetAssocCache shard = l2_;
    for (int b = 0; b < grid; ++b) run_block(b, shard);
  }

  for (const std::exception_ptr& err : errors)
    if (err) std::rethrow_exception(err);

  KernelStats stats;
  stats.grid_dim = cfg.grid_dim;
  stats.block_dim = cfg.block_dim;
  stats.shared_bytes_per_block = cfg.shared_bytes;
  stats.regs_per_thread = cfg.regs_per_thread;
  stats.launches = 1;

  std::unordered_set<std::uintptr_t> atomic_union;
  for (int b = 0; b < grid; ++b) {
    const auto i = static_cast<std::size_t>(b);
    stats.merge(block_stats[i]);
    for (const std::uintptr_t line : ledgers[i].atomic_lines)
      if (atomic_union.insert(line).second) ++stats.atomic_distinct_lines;
  }
  // Chaos hook: ECC-style corruption throws here, before the ledgers are
  // replayed into the device L2 — a failed launch must leave the device
  // bit-identical to never having launched, so a retry reproduces the
  // fault-free counters exactly.
  if (fault_) fault_->on_launch_stats(stats);
  for (int b = 0; b < grid; ++b)
    for (const std::uintptr_t line :
         ledgers[static_cast<std::size_t>(b)].l2_lines)
      l2_.access(line);
  ++launches_done_;
  if (observer_) {
    LaunchRecord rec;
    rec.cfg = cfg;
    rec.stats = &stats;
    rec.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
    rec.launch_index = launches_done_;
    rec.pooled = pooled;
    observer_(rec);
  }
  return stats;
}

}  // namespace tbs::vgpu
