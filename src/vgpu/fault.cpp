#include "vgpu/fault.hpp"

#include <chrono>
#include <thread>

namespace tbs::vgpu {

void FaultInjector::on_launch_begin() {
  double stall_seconds = 0.0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!schedule_init_) {
      schedule_left_ = plan_.fail_first_n;
      schedule_init_ = true;
    }
    ++stats_.attempts;

    // Fixed draw order per attempt — transient, stall, corrupt — so the
    // fault sequence depends only on the seed and the attempt ordinal, not
    // on which knobs are enabled or whether an earlier attempt threw.
    const double d_transient = rng_.uniform();
    const double d_stall = rng_.uniform();
    const double d_corrupt = rng_.uniform();
    pending_corrupt_ = d_corrupt < plan_.corrupt_rate;

    if (plan_.device_lost) {
      ++stats_.lost;
      pending_corrupt_ = false;
      throw DeviceLostError("vgpu fault: device lost (injected)");
    }
    if (schedule_left_ > 0) {
      --schedule_left_;
      ++stats_.scheduled;
      pending_corrupt_ = false;
      throw TransientLaunchError(
          "vgpu fault: scheduled launch failure (injected, " +
          std::to_string(schedule_left_) + " left)");
    }
    if (d_transient < plan_.transient_rate) {
      ++stats_.transients;
      pending_corrupt_ = false;
      throw TransientLaunchError(
          "vgpu fault: transient launch failure (injected)");
    }
    if (d_stall < plan_.stall_rate && plan_.stall_seconds > 0.0) {
      ++stats_.stalls;
      stall_seconds = plan_.stall_seconds;
    }
  }
  // Stall outside the lock: a stalled launch must not serialize the fault
  // bookkeeping of other streams on the device.
  if (stall_seconds > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double>(stall_seconds));
}

void FaultInjector::on_launch_stats(KernelStats& stats) {
  bool fire = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    fire = pending_corrupt_;
    pending_corrupt_ = false;
    if (fire) ++stats_.corruptions;
  }
  if (!fire) return;
  // ECC-style single-bit flip in one well-known counter. The caller throws
  // before replaying device state, so the corruption is observable only
  // through this error — a retry re-runs against a pristine device.
  stats.global_loads ^= (std::uint64_t{1} << 17);
  throw EccError(
      "vgpu fault: ECC uncorrectable error — counter 'global_loads' "
      "corrupted (bit 17), launch results discarded");
}

SilentFault FaultInjector::next_silent() {
  const std::lock_guard<std::mutex> lock(mu_);
  // Fixed two draws per call — staged, then result — so the silent-fault
  // sequence is a pure function of (seed, launch ordinal) regardless of
  // which silent knob is enabled.
  const double d_staged = silent_rng_.uniform();
  const double d_result = silent_rng_.uniform();
  if (d_staged < plan_.silent_staged_rate) {
    ++stats_.silent_staged;
    return SilentFault::Staged;
  }
  if (d_result < plan_.silent_result_rate) {
    ++stats_.silent_result;
    return SilentFault::Result;
  }
  return SilentFault::None;
}

}  // namespace tbs::vgpu
