// Stream / Event — CUDA-style in-order launch queues over the simulated
// device.
//
// A Stream is a FIFO of kernel launches enqueued with
// `Device::launch_async`. Work executes lazily: the queue drains when an
// Event is waited on or the stream synchronizes. While a launch drains, its
// blocks are fanned out onto a shared worker pool (see
// `set_async_worker_count`), yet the returned `KernelStats` are bit-identical
// to the sequential `Device::launch` path — see device.cpp for the per-block
// L2 snapshot + block-order replay contract that makes this hold.
//
// Determinism contract: functional results are deterministic for kernels
// whose cross-block global-memory traffic is commutative-exact (integer
// atomics, disjoint stores) and which do not consume the *returned* old
// value of contended atomics — true of every SDH/PCF variant. Host-side use
// is single-threaded per stream (like a CUDA stream driven from one host
// thread); several Streams on one Device may be interleaved from one thread.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <memory>

#include "vgpu/device.hpp"

namespace tbs::vgpu {

namespace detail {

/// Shared completion record for one asynchronous launch.
struct EventState {
  bool done = false;
  KernelStats stats;
  std::exception_ptr error;
};

}  // namespace detail

/// Completion handle for one `Device::launch_async` call (the CUDA-event
/// analogue). Copyable; all copies observe the same launch.
class Event {
 public:
  Event() = default;

  /// True once the launch has executed (successfully or not).
  [[nodiscard]] bool ready() const noexcept {
    return state_ != nullptr && state_->done;
  }

  /// Drain the owning stream up to (and including) this launch, then return
  /// its counters. Rethrows anything the kernel body threw. Waiting on a
  /// default-constructed Event fails the check.
  const KernelStats& wait();

 private:
  friend class Device;

  Event(std::shared_ptr<detail::EventState> state, Stream* stream)
      : state_(std::move(state)), stream_(stream) {}

  std::shared_ptr<detail::EventState> state_;
  Stream* stream_ = nullptr;
};

/// An in-order launch queue bound to one Device.
class Stream {
 public:
  explicit Stream(Device& device) : dev_(&device) {}

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  [[nodiscard]] Device& device() const noexcept { return *dev_; }

  /// Launches enqueued but not yet executed.
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// Install a chaos schedule scoped to this stream: launches draining
  /// through it run the injector's hooks in addition to any device-level
  /// plan. A stream fault poisons the rest of the queue exactly like an
  /// organic launch failure (in-order semantics). A plan with no knobs
  /// enabled removes injection.
  void set_fault_plan(const FaultPlan& plan) {
    fault_ = plan.enabled() ? std::make_unique<FaultInjector>(plan) : nullptr;
  }

  /// The stream-scoped injector (nullptr when none is configured).
  [[nodiscard]] const FaultInjector* fault_injector() const noexcept {
    return fault_.get();
  }

  /// Execute every pending launch in order. Returns the merged counters of
  /// all launches completed on this stream since the previous synchronize()
  /// call (including ones already drained through Event::wait). Rethrows
  /// the first failure; launches queued behind a failed one are poisoned
  /// with the same error (in-order semantics: they may depend on it).
  KernelStats synchronize();

 private:
  friend class Device;
  friend class Event;

  struct Record {
    LaunchConfig cfg;
    KernelBody body;
    std::shared_ptr<detail::EventState> state;
  };

  /// Execute queued launches FIFO until `target` completes (nullptr = all).
  void drain_until(const detail::EventState* target);

  Device* dev_;
  std::deque<Record> queue_;
  KernelStats accumulated_;  ///< merged stats since last synchronize()
  std::unique_ptr<FaultInjector> fault_;  ///< stream-scoped chaos (or null)
};

/// Set how many pool workers execute the blocks of draining async launches
/// (0 = hardware concurrency, at least 1). Only effective before the first
/// async launch of the process — the pool is created once, on first use.
void set_async_worker_count(unsigned n);

/// Worker count of the async executor pool (creates the pool on first call).
unsigned async_worker_count();

}  // namespace tbs::vgpu
