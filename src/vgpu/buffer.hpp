// Global-memory buffers for the simulated device.
//
// A DeviceBuffer<T> is the vgpu analogue of a cudaMalloc'd array: kernels
// access it exclusively through awaitable load/store/atomic operations, and
// the executor charges global-memory (or read-only-cache) cost per warp
// access. Host code reads/writes through host() freely between launches.
#pragma once

#include <cstddef>
#include <new>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/points.hpp"
#include "vgpu/ctx.hpp"

namespace tbs::vgpu {

/// cudaMalloc guarantees at least 256-byte alignment; mirror that so the
/// coalescing / cache-set analysis of a launch depends only on the layout
/// *within* each buffer, never on where the host allocator happened to
/// place it. Without this, counters drift between otherwise identical runs
/// whenever malloc returns a different address.
inline constexpr std::size_t kDeviceAllocAlign = 256;

template <class T>
struct DeviceAllocator {
  using value_type = T;

  DeviceAllocator() = default;
  template <class U>
  DeviceAllocator(const DeviceAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T),
                                          std::align_val_t{kDeviceAllocAlign}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kDeviceAllocAlign});
  }

  template <class U>
  bool operator==(const DeviceAllocator<U>&) const noexcept {
    return true;
  }
};

template <class T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  /// Allocate n elements, value-initialized.
  explicit DeviceBuffer(std::size_t n, T init = T{}) : data_(n, init) {}

  /// Allocate and copy from host data.
  explicit DeviceBuffer(std::span<const T> host_data)
      : data_(host_data.begin(), host_data.end()) {}

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  /// Host-side view (valid only between launches — including queued async
  /// launches: drain the stream before reading what a kernel wrote).
  [[nodiscard]] std::span<T> host() noexcept { return data_; }
  [[nodiscard]] std::span<const T> host() const noexcept { return data_; }

  /// Reset every element (e.g. zero an output histogram between launches).
  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  /// Global-memory load (goes through the simulated L2).
  [[nodiscard]] detail::LoadAwaiter<T> load(ThreadCtx& ctx,
                                            std::size_t i) const {
    return make_load(ctx, i, OpKind::GlobalLoad);
  }

  /// Load through the read-only data cache path (CUDA `const __restrict__`
  /// / __ldg). Functionally identical; charged at ROC latency on hits.
  [[nodiscard]] detail::LoadAwaiter<T> ro_load(ThreadCtx& ctx,
                                               std::size_t i) const {
    return make_load(ctx, i, OpKind::RocLoad);
  }

  [[nodiscard]] detail::StoreAwaiter<T> store(ThreadCtx& ctx, std::size_t i,
                                              T v) {
    detail::StoreAwaiter<T> aw;
    aw.ctx = &ctx;
    aw.op.kind = OpKind::GlobalStore;
    aw.op.n_addr = 1;
    aw.op.elem_bytes = sizeof(T);
    aw.op.addr[0] = addr_of(i);
    aw.dst = &data_[i];
    aw.value = v;
    return aw;
  }

  /// atomicAdd on global memory; returns the previous value.
  [[nodiscard]] detail::AtomicAddAwaiter<T> atomic_add(ThreadCtx& ctx,
                                                       std::size_t i, T v) {
    detail::AtomicAddAwaiter<T> aw;
    aw.ctx = &ctx;
    aw.op.kind = OpKind::GlobalAtomic;
    aw.op.n_addr = 1;
    aw.op.elem_bytes = sizeof(T);
    aw.op.addr[0] = addr_of(i);
    aw.dst = &data_[i];
    aw.value = v;
    return aw;
  }

 private:
  [[nodiscard]] std::uintptr_t addr_of(std::size_t i) const {
    check(i < data_.size(), "DeviceBuffer access out of range");
    return reinterpret_cast<std::uintptr_t>(data_.data() + i);
  }

  [[nodiscard]] detail::LoadAwaiter<T> make_load(ThreadCtx& ctx,
                                                 std::size_t i,
                                                 OpKind kind) const {
    detail::LoadAwaiter<T> aw;
    aw.ctx = &ctx;
    aw.op.kind = kind;
    aw.op.n_addr = 1;
    aw.op.elem_bytes = sizeof(T);
    aw.op.addr[0] = addr_of(i);
    aw.src = &data_[i];
    return aw;
  }

  std::vector<T, DeviceAllocator<T>> data_;
};

/// SoA 3-D point set resident in simulated global memory (paper Sec. IV-A:
/// separate x/y/z arrays so warp loads coalesce).
class DevicePoints {
 public:
  DevicePoints() = default;

  explicit DevicePoints(const PointsSoA& pts)
      : x_(pts.x()), y_(pts.y()), z_(pts.z()) {}

  [[nodiscard]] std::size_t size() const noexcept { return x_.size(); }

  /// Load point i from global memory as one logical (3-address) instruction.
  [[nodiscard]] detail::PointLoadAwaiter load_point(ThreadCtx& ctx,
                                                    std::size_t i) const {
    return make_point_load(ctx, i, OpKind::GlobalLoad);
  }

  /// Load point i through the read-only cache path.
  [[nodiscard]] detail::PointLoadAwaiter ro_load_point(ThreadCtx& ctx,
                                                       std::size_t i) const {
    return make_point_load(ctx, i, OpKind::RocLoad);
  }

  [[nodiscard]] DeviceBuffer<float>& x() noexcept { return x_; }
  [[nodiscard]] DeviceBuffer<float>& y() noexcept { return y_; }
  [[nodiscard]] DeviceBuffer<float>& z() noexcept { return z_; }

 private:
  [[nodiscard]] detail::PointLoadAwaiter make_point_load(ThreadCtx& ctx,
                                                         std::size_t i,
                                                         OpKind kind) const {
    check(i < size(), "DevicePoints access out of range");
    detail::PointLoadAwaiter aw;
    aw.ctx = &ctx;
    aw.op.kind = kind;
    aw.op.n_addr = 3;
    aw.op.elem_bytes = sizeof(float);
    aw.op.addr[0] = reinterpret_cast<std::uintptr_t>(x_.host().data() + i);
    aw.op.addr[1] = reinterpret_cast<std::uintptr_t>(y_.host().data() + i);
    aw.op.addr[2] = reinterpret_cast<std::uintptr_t>(z_.host().data() + i);
    aw.px = x_.host().data() + i;
    aw.py = y_.host().data() + i;
    aw.pz = z_.host().data() + i;
    return aw;
  }

  mutable DeviceBuffer<float> x_;
  mutable DeviceBuffer<float> y_;
  mutable DeviceBuffer<float> z_;
};

/// Shared-memory tile of 3-D points (three SharedSpan<float> lanes).
class SharedPointsTile {
 public:
  SharedPointsTile() = default;

  /// Carve a B-point tile out of the block's shared arena at byte_offset.
  /// Layout: x[B], y[B], z[B] back-to-back.
  SharedPointsTile(ThreadCtx& ctx, std::size_t byte_offset, std::size_t b)
      : x_(ctx.shared<float>(byte_offset, b)),
        y_(ctx.shared<float>(byte_offset + b * sizeof(float), b)),
        z_(ctx.shared<float>(byte_offset + 2 * b * sizeof(float), b)),
        size_(b) {}

  /// Bytes of shared memory a B-point tile occupies.
  static constexpr std::size_t bytes(std::size_t b) noexcept {
    return 3 * b * sizeof(float);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  [[nodiscard]] detail::PointLoadAwaiter load_point(ThreadCtx& ctx,
                                                    std::size_t i) const;
  [[nodiscard]] detail::PointStoreAwaiter store_point(ThreadCtx& ctx,
                                                      std::size_t i,
                                                      Point3 p) const;

 private:
  SharedSpan<float> x_;
  SharedSpan<float> y_;
  SharedSpan<float> z_;
  std::size_t size_ = 0;
};

inline detail::PointLoadAwaiter SharedPointsTile::load_point(
    ThreadCtx& ctx, std::size_t i) const {
  const auto lx = x_.load(ctx, i);
  const auto ly = y_.load(ctx, i);
  const auto lz = z_.load(ctx, i);
  detail::PointLoadAwaiter aw;
  aw.ctx = &ctx;
  aw.op.kind = OpKind::SharedLoad;
  aw.op.n_addr = 3;
  aw.op.elem_bytes = sizeof(float);
  aw.op.addr = {lx.op.addr[0], ly.op.addr[0], lz.op.addr[0]};
  aw.px = lx.src;
  aw.py = ly.src;
  aw.pz = lz.src;
  return aw;
}

inline detail::PointStoreAwaiter SharedPointsTile::store_point(
    ThreadCtx& ctx, std::size_t i, Point3 p) const {
  auto sx = x_.store(ctx, i, p.x);
  auto sy = y_.store(ctx, i, p.y);
  auto sz = z_.store(ctx, i, p.z);
  detail::PointStoreAwaiter aw;
  aw.ctx = &ctx;
  aw.op.kind = OpKind::SharedStore;
  aw.op.n_addr = 3;
  aw.op.elem_bytes = sizeof(float);
  aw.op.addr = {sx.op.addr[0], sy.op.addr[0], sz.op.addr[0]};
  aw.px = sx.dst;
  aw.py = sy.dst;
  aw.pz = sz.dst;
  aw.value = p;
  return aw;
}

}  // namespace tbs::vgpu
