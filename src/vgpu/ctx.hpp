// ThreadCtx — the per-lane view of the simulated device — and the awaitable
// operation types kernels use to touch memory, synchronize and shuffle.
//
// Kernel authoring model (mirrors CUDA):
//   KernelTask my_kernel(ThreadCtx& ctx, Params params) {
//     auto tile = ctx.shared<float>(/*byte_offset=*/0, /*count=*/B);
//     co_await tile.store(ctx, ctx.thread_id, v);   // shared store
//     co_await ctx.sync();                          // __syncthreads()
//     float x = co_await tile.load(ctx, j);         // shared load
//     float y = co_await ctx.shfl(x, src_lane);     // __shfl_sync broadcast
//     ctx.arith(8);                                 // account 8 scalar ops
//   }
//
// Every co_await suspends the lane; the executor gathers a warp's suspended
// ops, analyzes them as one SIMT instruction, charges cycle cost, and
// resumes the lanes. Data movement happens in await_resume(), i.e. after the
// cost has been charged, which keeps functional results independent of the
// timing model.
#pragma once

#include <atomic>
#include <bit>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "common/error.hpp"
#include "common/points.hpp"
#include "vgpu/op.hpp"
#include "vgpu/stats.hpp"

namespace tbs::vgpu {

class ThreadCtx;

/// Per-warp mutable state shared by the executor and the shuffle awaiters.
struct WarpState {
  double clock = 0.0;  ///< serialized warp cycles so far
  /// Shuffle staging: lane deposits at suspend; executor snapshots to
  /// `shfl_result` when the warp-wide shuffle instruction issues.
  std::uint64_t shfl_staging[32] = {};
  std::uint64_t shfl_result[32] = {};
  int cur_phase = static_cast<int>(Phase::Setup);
  double phase_start_clock = 0.0;
  double tail_arith_max = 0.0;  ///< arith of lanes that already returned
  bool at_barrier = false;
};

namespace detail {

/// Base for awaiters that park a PendingOp in the lane's slot.
struct OpAwaiterBase {
  ThreadCtx* ctx;
  PendingOp op;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) noexcept;
};

template <class T>
struct LoadAwaiter : OpAwaiterBase {
  const T* src;
  T await_resume() const noexcept { return *src; }
};

/// Loads one SoA 3-D point (x/y/z arrays) as a single logical instruction.
struct PointLoadAwaiter : OpAwaiterBase {
  const float* px;
  const float* py;
  const float* pz;
  Point3 await_resume() const noexcept { return {*px, *py, *pz}; }
};

template <class T>
struct StoreAwaiter : OpAwaiterBase {
  T* dst;
  T value;
  void await_resume() const noexcept { *dst = value; }
};

struct PointStoreAwaiter : OpAwaiterBase {
  float* px;
  float* py;
  float* pz;
  Point3 value;
  void await_resume() const noexcept {
    *px = value.x;
    *py = value.y;
    *pz = value.z;
  }
};

/// Read-modify-write add; returns the previous value (like atomicAdd).
/// Global atomics use a real CPU atomic RMW: blocks of a stream launch run
/// concurrently on the worker pool and may contend on the same address.
/// Shared-memory atomics stay plain — the arena is private to the block.
template <class T>
struct AtomicAddAwaiter : OpAwaiterBase {
  T* dst;
  T value;
  T await_resume() const noexcept {
    if (op.kind == OpKind::GlobalAtomic) {
      std::atomic_ref<T> ref(*dst);
      T old = ref.load(std::memory_order_relaxed);
      while (!ref.compare_exchange_weak(old, static_cast<T>(old + value),
                                        std::memory_order_relaxed)) {
      }
      return old;
    }
    const T old = *dst;
    *dst = static_cast<T>(old + value);
    return old;
  }
};

/// Read-modify-write min (atomicMin), used by kNN-style kernels.
template <class T>
struct AtomicMinAwaiter : OpAwaiterBase {
  T* dst;
  T value;
  T await_resume() const noexcept {
    if (op.kind == OpKind::GlobalAtomic) {
      std::atomic_ref<T> ref(*dst);
      T old = ref.load(std::memory_order_relaxed);
      while (value < old && !ref.compare_exchange_weak(
                                old, value, std::memory_order_relaxed)) {
      }
      return old;
    }
    const T old = *dst;
    if (value < old) *dst = value;
    return old;
  }
};

struct BarrierAwaiter : OpAwaiterBase {
  void await_resume() const noexcept {}
};

template <class T>
struct ShflAwaiter {
  static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>,
                "shuffle payload must fit in a 64-bit register");
  ThreadCtx* ctx;
  T value;
  int src_lane;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) noexcept;
  T await_resume() const noexcept;
};

}  // namespace detail

/// Typed view over a slice of the block's shared-memory arena. All threads
/// of a block constructing a view with the same byte offset see the same
/// storage — exactly like a `__shared__` array in CUDA.
template <class T>
class SharedSpan {
 public:
  SharedSpan() = default;
  SharedSpan(T* base, std::size_t count) : base_(base), count_(count) {}

  [[nodiscard]] std::size_t size() const noexcept { return count_; }

  detail::LoadAwaiter<T> load(ThreadCtx& ctx, std::size_t i) const;
  detail::StoreAwaiter<T> store(ThreadCtx& ctx, std::size_t i, T v) const;
  detail::AtomicAddAwaiter<T> atomic_add(ThreadCtx& ctx, std::size_t i,
                                         T v) const;
  detail::AtomicMinAwaiter<T> atomic_min(ThreadCtx& ctx, std::size_t i,
                                         T v) const;

 private:
  T* base_ = nullptr;
  std::size_t count_ = 0;
};

/// Per-lane device context: thread/block ids, shared-memory arena access,
/// synchronization, shuffles and arithmetic accounting.
class ThreadCtx {
 public:
  // --- identity (mirrors threadIdx/blockIdx/blockDim/gridDim) -------------
  int thread_id = 0;  ///< within the block
  int block_id = 0;
  int block_dim = 0;
  int grid_dim = 0;
  int lane = 0;       ///< thread_id % warp_size

  [[nodiscard]] long global_thread_id() const noexcept {
    return static_cast<long>(block_id) * block_dim + thread_id;
  }

  // --- shared memory -------------------------------------------------------
  /// Typed view starting `byte_offset` into the block's shared arena.
  /// Fails if the slice exceeds the launch's dynamic shared size.
  template <class T>
  [[nodiscard]] SharedSpan<T> shared(std::size_t byte_offset,
                                     std::size_t count) const {
    check(byte_offset % alignof(T) == 0, "shared slice misaligned");
    check(byte_offset + count * sizeof(T) <= shared_size,
          "shared slice exceeds launch shared_bytes");
    return SharedSpan<T>(
        reinterpret_cast<T*>(shared_base + byte_offset), count);
  }

  // --- synchronization / shuffle -------------------------------------------
  /// __syncthreads(): blocks until every live thread of the block arrives.
  [[nodiscard]] detail::BarrierAwaiter sync() noexcept {
    detail::BarrierAwaiter aw;
    aw.ctx = this;
    aw.op.kind = OpKind::Barrier;
    return aw;
  }

  /// __shfl_sync(): returns `v` as held by `src_lane` of this warp. Every
  /// live lane of the warp must participate.
  template <class T>
  [[nodiscard]] detail::ShflAwaiter<T> shfl(T v, int src_lane) noexcept {
    return detail::ShflAwaiter<T>{this, v, src_lane & 31};
  }

  // --- accounting ------------------------------------------------------------
  /// Record `n` scalar arithmetic operations executed by this lane since the
  /// last suspension (folded into warp cycles as max-over-lanes).
  void arith(double n) noexcept { arith_ops += n; }

  /// Record `n` control-flow operations (loop bookkeeping, branches); kept
  /// separate so utilization tables can report control vs arithmetic load.
  void control(double n) noexcept { control_ops += n; }

  /// Attribute subsequent cycles of this warp to phase `p` (see Phase).
  void mark_phase(Phase p) noexcept {
    const int id = static_cast<int>(p);
    if (warp->cur_phase == id) return;
    (*phase_cycles)[warp->cur_phase] += warp->clock - warp->phase_start_clock;
    warp->cur_phase = id;
    warp->phase_start_clock = warp->clock;
  }

  // --- executor wiring (treat as private; kernels never touch these) -------
  WarpState* warp = nullptr;
  std::byte* shared_base = nullptr;
  std::size_t shared_size = 0;
  std::uintptr_t shared_arena_addr = 0;
  std::map<int, double>* phase_cycles = nullptr;
  PendingOp pending{};
  bool has_pending = false;
  double arith_ops = 0.0;
  double arith_mark = 0.0;  ///< checkpoint of arith_ops at last charge
  double control_ops = 0.0;
  double control_mark = 0.0;
};

// ---- inline implementations ------------------------------------------------

namespace detail {

inline void OpAwaiterBase::await_suspend(std::coroutine_handle<>) noexcept {
  ctx->pending = op;
  ctx->has_pending = true;
}

template <class T>
void ShflAwaiter<T>::await_suspend(std::coroutine_handle<>) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(T));
  ctx->warp->shfl_staging[ctx->lane & 31] = bits;
  ctx->pending.kind = OpKind::Shuffle;
  ctx->pending.n_addr = 0;
  ctx->pending.elem_bytes = sizeof(T);
  ctx->pending.shuffle_src = src_lane;
  ctx->has_pending = true;
}

template <class T>
T ShflAwaiter<T>::await_resume() const noexcept {
  const std::uint64_t bits = ctx->warp->shfl_result[src_lane & 31];
  T out;
  std::memcpy(&out, &bits, sizeof(T));
  return out;
}

}  // namespace detail

template <class T>
detail::LoadAwaiter<T> SharedSpan<T>::load(ThreadCtx& ctx,
                                           std::size_t i) const {
  detail::LoadAwaiter<T> aw;
  aw.ctx = &ctx;
  aw.op.kind = OpKind::SharedLoad;
  aw.op.n_addr = 1;
  aw.op.elem_bytes = sizeof(T);
  aw.op.addr[0] = reinterpret_cast<std::uintptr_t>(base_ + i);
  aw.src = base_ + i;
  return aw;
}

template <class T>
detail::StoreAwaiter<T> SharedSpan<T>::store(ThreadCtx& ctx, std::size_t i,
                                             T v) const {
  detail::StoreAwaiter<T> aw;
  aw.ctx = &ctx;
  aw.op.kind = OpKind::SharedStore;
  aw.op.n_addr = 1;
  aw.op.elem_bytes = sizeof(T);
  aw.op.addr[0] = reinterpret_cast<std::uintptr_t>(base_ + i);
  aw.dst = base_ + i;
  aw.value = v;
  return aw;
}

template <class T>
detail::AtomicAddAwaiter<T> SharedSpan<T>::atomic_add(ThreadCtx& ctx,
                                                      std::size_t i,
                                                      T v) const {
  detail::AtomicAddAwaiter<T> aw;
  aw.ctx = &ctx;
  aw.op.kind = OpKind::SharedAtomic;
  aw.op.n_addr = 1;
  aw.op.elem_bytes = sizeof(T);
  aw.op.addr[0] = reinterpret_cast<std::uintptr_t>(base_ + i);
  aw.dst = base_ + i;
  aw.value = v;
  return aw;
}

template <class T>
detail::AtomicMinAwaiter<T> SharedSpan<T>::atomic_min(ThreadCtx& ctx,
                                                      std::size_t i,
                                                      T v) const {
  detail::AtomicMinAwaiter<T> aw;
  aw.ctx = &ctx;
  aw.op.kind = OpKind::SharedAtomic;
  aw.op.n_addr = 1;
  aw.op.elem_bytes = sizeof(T);
  aw.op.addr[0] = reinterpret_cast<std::uintptr_t>(base_ + i);
  aw.dst = base_ + i;
  aw.value = v;
  return aw;
}

}  // namespace tbs::vgpu
