#include "vgpu/stream.hpp"

#include <utility>

#include "common/error.hpp"

namespace tbs::vgpu {

const KernelStats& Event::wait() {
  check(state_ != nullptr, "Event::wait: waiting on an empty event");
  if (!state_->done) stream_->drain_until(state_.get());
  if (state_->error) std::rethrow_exception(state_->error);
  return state_->stats;
}

KernelStats Stream::synchronize() {
  drain_until(nullptr);
  KernelStats merged = std::move(accumulated_);
  accumulated_ = KernelStats{};
  return merged;
}

void Stream::drain_until(const detail::EventState* target) {
  while (!queue_.empty()) {
    Record rec = std::move(queue_.front());
    queue_.pop_front();
    try {
      // Stream-scoped chaos runs around the device execution: the begin
      // hook may stall or fail the launch, the stats hook may corrupt it —
      // either lands in this stream's error path like an organic failure.
      if (fault_) fault_->on_launch_begin();
      rec.state->stats = dev_->execute_launch(rec.cfg, rec.body,
                                              /*pooled=*/true);
      if (fault_) fault_->on_launch_stats(rec.state->stats);
    } catch (...) {
      rec.state->error = std::current_exception();
    }
    rec.state->done = true;
    if (rec.state->error) {
      // Later launches may depend on the failed one's results: poison the
      // rest of the queue with the same error instead of running it.
      for (Record& poisoned : queue_) {
        poisoned.state->error = rec.state->error;
        poisoned.state->done = true;
      }
      queue_.clear();
      std::rethrow_exception(rec.state->error);
    }
    accumulated_.merge(rec.state->stats);
    if (rec.state.get() == target) return;
  }
}

}  // namespace tbs::vgpu
