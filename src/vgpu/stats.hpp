// Kernel execution counters collected by the executor.
//
// These play the role the NVIDIA Visual Profiler plays in the paper: every
// table/figure about utilization or achieved bandwidth is derived from this
// struct through perfmodel::KernelTimeModel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>

namespace tbs::vgpu {

/// Well-known phase ids used by the 2-BS kernels (see ThreadCtx::mark_phase).
enum class Phase : int {
  Setup = 0,       ///< tile loads / initialization
  InterBlock = 1,  ///< L-vs-R distance computations
  IntraBlock = 2,  ///< triangular within-L computations
  Output = 3,      ///< result write-back / reduction
};

/// Aggregated counters for one kernel launch (or several merged launches).
struct KernelStats {
  // --- per-lane operation counts -----------------------------------------
  std::uint64_t global_loads = 0;
  std::uint64_t global_stores = 0;
  std::uint64_t global_atomics = 0;
  std::uint64_t roc_loads = 0;
  std::uint64_t shared_loads = 0;
  std::uint64_t shared_stores = 0;
  std::uint64_t shared_atomics = 0;
  std::uint64_t shuffles = 0;
  std::uint64_t barriers = 0;

  // --- memory traffic ------------------------------------------------------
  std::uint64_t dram_bytes = 0;      ///< served by DRAM (L2 misses)
  std::uint64_t l2_bytes = 0;        ///< served by L2 (hits)
  std::uint64_t roc_hit_bytes = 0;   ///< useful bytes served by the ROC
  std::uint64_t roc_port_cycles = 0; ///< tex-unit request slots consumed
  std::uint64_t shared_bytes = 0;    ///< shared-memory traffic
  std::uint64_t global_transactions = 0;  ///< coalesced segment count
  std::uint64_t shared_transactions = 0;

  // --- hazards ---------------------------------------------------------------
  std::uint64_t bank_conflict_extra = 0;     ///< replays due to bank conflicts
  std::uint64_t atomic_collision_extra = 0;  ///< serialization steps
  /// L2-slice busy cycles consumed by global atomics (device-wide resource).
  double global_atomic_port_cycles = 0.0;
  /// Distinct cache lines global atomics touched (bounds slice parallelism).
  std::uint64_t atomic_distinct_lines = 0;

  // --- SIMD efficiency / divergence -----------------------------------------
  std::uint64_t warp_instructions = 0;   ///< warp-level op groups issued
  std::uint64_t active_lane_slots = 0;   ///< lanes participating
  std::uint64_t possible_lane_slots = 0; ///< warp_instructions * warp_size

  // --- arithmetic / control --------------------------------------------------
  double arith_ops = 0.0;          ///< scalar flop-ish operations (per lane)
  double arith_warp_cycles = 0.0;  ///< SIMD-folded cycles (max over lanes)
  double control_ops = 0.0;        ///< branch/loop bookkeeping ops (per lane)
  double control_warp_cycles = 0.0;

  // --- simulated time ---------------------------------------------------------
  double total_warp_cycles = 0.0;  ///< sum over warps of serial warp cycles
  double max_block_cycles = 0.0;
  std::map<int, double> phase_cycles;  ///< per-Phase warp-cycle totals

  // --- launch configuration echo ----------------------------------------------
  int grid_dim = 0;
  int block_dim = 0;
  std::size_t shared_bytes_per_block = 0;
  int regs_per_thread = 0;
  std::uint64_t launches = 0;

  /// Bit-exact comparison; the stream determinism tests rely on this to
  /// assert pooled and sequential execution produce identical counters.
  [[nodiscard]] bool operator==(const KernelStats&) const = default;

  /// Fraction of SIMD lane slots doing useful work (1.0 = divergence-free).
  [[nodiscard]] double simd_efficiency() const {
    return possible_lane_slots == 0
               ? 1.0
               : static_cast<double>(active_lane_slots) /
                     static_cast<double>(possible_lane_slots);
  }

  /// Cycles attributed to one phase (0 if the kernel never marked it).
  [[nodiscard]] double phase(Phase p) const {
    const auto it = phase_cycles.find(static_cast<int>(p));
    return it == phase_cycles.end() ? 0.0 : it->second;
  }

  /// Combine counters from another launch (e.g. main kernel + reduction).
  void merge(const KernelStats& o) {
    global_loads += o.global_loads;
    global_stores += o.global_stores;
    global_atomics += o.global_atomics;
    roc_loads += o.roc_loads;
    shared_loads += o.shared_loads;
    shared_stores += o.shared_stores;
    shared_atomics += o.shared_atomics;
    shuffles += o.shuffles;
    barriers += o.barriers;
    dram_bytes += o.dram_bytes;
    l2_bytes += o.l2_bytes;
    roc_hit_bytes += o.roc_hit_bytes;
    roc_port_cycles += o.roc_port_cycles;
    shared_bytes += o.shared_bytes;
    global_transactions += o.global_transactions;
    shared_transactions += o.shared_transactions;
    bank_conflict_extra += o.bank_conflict_extra;
    atomic_collision_extra += o.atomic_collision_extra;
    global_atomic_port_cycles += o.global_atomic_port_cycles;
    atomic_distinct_lines += o.atomic_distinct_lines;
    warp_instructions += o.warp_instructions;
    active_lane_slots += o.active_lane_slots;
    possible_lane_slots += o.possible_lane_slots;
    arith_ops += o.arith_ops;
    arith_warp_cycles += o.arith_warp_cycles;
    control_ops += o.control_ops;
    control_warp_cycles += o.control_warp_cycles;
    total_warp_cycles += o.total_warp_cycles;
    max_block_cycles = std::max(max_block_cycles, o.max_block_cycles);
    for (const auto& [k, v] : o.phase_cycles) phase_cycles[k] += v;
    launches += o.launches;
    // Keep the primary kernel's config (the first non-empty one).
    if (grid_dim == 0) {
      grid_dim = o.grid_dim;
      block_dim = o.block_dim;
      shared_bytes_per_block = o.shared_bytes_per_block;
      regs_per_thread = o.regs_per_thread;
    }
  }
};

}  // namespace tbs::vgpu
