// Pending-operation descriptors exchanged between kernel coroutines and the
// warp scheduler.
//
// A kernel coroutine suspends at every memory access / barrier / shuffle and
// leaves one of these in its ThreadCtx slot; the executor gathers the 32
// descriptors of a warp, analyzes them as a single SIMT instruction
// (coalescing, bank conflicts, atomic collisions) and charges cycle cost
// before resuming the lanes.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace tbs::vgpu {

/// Kind of suspended operation.
enum class OpKind : std::uint8_t {
  None = 0,
  GlobalLoad,
  GlobalStore,
  GlobalAtomic,
  RocLoad,       ///< load through the read-only data cache path
  SharedLoad,
  SharedStore,
  SharedAtomic,
  Shuffle,
  Barrier,
};

/// True for ops whose addresses live in the per-block shared arena.
constexpr bool is_shared_op(OpKind k) noexcept {
  return k == OpKind::SharedLoad || k == OpKind::SharedStore ||
         k == OpKind::SharedAtomic;
}

/// True for ops that touch global memory (directly or via a cache).
constexpr bool is_global_op(OpKind k) noexcept {
  return k == OpKind::GlobalLoad || k == OpKind::GlobalStore ||
         k == OpKind::GlobalAtomic || k == OpKind::RocLoad;
}

/// One lane's suspended operation. Up to three addresses so that a 3-D point
/// (SoA x/y/z) can be fetched as one logical instruction.
struct PendingOp {
  OpKind kind = OpKind::None;
  std::uint8_t n_addr = 0;
  std::uint16_t elem_bytes = 0;            ///< bytes per address
  std::array<std::uintptr_t, 3> addr{};    ///< byte addresses
  int shuffle_src = 0;                     ///< source lane for Shuffle
};

}  // namespace tbs::vgpu
