file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_angular.cpp.o"
  "CMakeFiles/test_core.dir/core/test_angular.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_classify.cpp.o"
  "CMakeFiles/test_core.dir/core/test_classify.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_framework.cpp.o"
  "CMakeFiles/test_core.dir/core/test_framework.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_generic.cpp.o"
  "CMakeFiles/test_core.dir/core/test_generic.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_generic_more.cpp.o"
  "CMakeFiles/test_core.dir/core/test_generic_more.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_planner.cpp.o"
  "CMakeFiles/test_core.dir/core/test_planner.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
