file(REMOVE_RECURSE
  "CMakeFiles/test_kernels.dir/kernels/test_loadbalance.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_loadbalance.cpp.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_multi.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_multi.cpp.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_pcf.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_pcf.cpp.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_properties.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_properties.cpp.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_sdh.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_sdh.cpp.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_type1.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_type1.cpp.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_type3.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_type3.cpp.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_warpsum.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_warpsum.cpp.o.d"
  "test_kernels"
  "test_kernels.pdb"
  "test_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
