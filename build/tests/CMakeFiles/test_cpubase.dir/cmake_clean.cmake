file(REMOVE_RECURSE
  "CMakeFiles/test_cpubase.dir/cpubase/test_affinity.cpp.o"
  "CMakeFiles/test_cpubase.dir/cpubase/test_affinity.cpp.o.d"
  "CMakeFiles/test_cpubase.dir/cpubase/test_cpu_stats.cpp.o"
  "CMakeFiles/test_cpubase.dir/cpubase/test_cpu_stats.cpp.o.d"
  "CMakeFiles/test_cpubase.dir/cpubase/test_thread_pool.cpp.o"
  "CMakeFiles/test_cpubase.dir/cpubase/test_thread_pool.cpp.o.d"
  "CMakeFiles/test_cpubase.dir/cpubase/test_tree_sdh.cpp.o"
  "CMakeFiles/test_cpubase.dir/cpubase/test_tree_sdh.cpp.o.d"
  "test_cpubase"
  "test_cpubase.pdb"
  "test_cpubase[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpubase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
