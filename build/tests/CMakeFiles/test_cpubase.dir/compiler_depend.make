# Empty compiler generated dependencies file for test_cpubase.
# This may be replaced when dependencies are built.
