file(REMOVE_RECURSE
  "CMakeFiles/test_perfmodel.dir/perfmodel/test_counts.cpp.o"
  "CMakeFiles/test_perfmodel.dir/perfmodel/test_counts.cpp.o.d"
  "CMakeFiles/test_perfmodel.dir/perfmodel/test_cpumodel.cpp.o"
  "CMakeFiles/test_perfmodel.dir/perfmodel/test_cpumodel.cpp.o.d"
  "CMakeFiles/test_perfmodel.dir/perfmodel/test_occupancy.cpp.o"
  "CMakeFiles/test_perfmodel.dir/perfmodel/test_occupancy.cpp.o.d"
  "CMakeFiles/test_perfmodel.dir/perfmodel/test_saturation.cpp.o"
  "CMakeFiles/test_perfmodel.dir/perfmodel/test_saturation.cpp.o.d"
  "CMakeFiles/test_perfmodel.dir/perfmodel/test_timemodel.cpp.o"
  "CMakeFiles/test_perfmodel.dir/perfmodel/test_timemodel.cpp.o.d"
  "test_perfmodel"
  "test_perfmodel.pdb"
  "test_perfmodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
