
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/perfmodel/test_counts.cpp" "tests/CMakeFiles/test_perfmodel.dir/perfmodel/test_counts.cpp.o" "gcc" "tests/CMakeFiles/test_perfmodel.dir/perfmodel/test_counts.cpp.o.d"
  "/root/repo/tests/perfmodel/test_cpumodel.cpp" "tests/CMakeFiles/test_perfmodel.dir/perfmodel/test_cpumodel.cpp.o" "gcc" "tests/CMakeFiles/test_perfmodel.dir/perfmodel/test_cpumodel.cpp.o.d"
  "/root/repo/tests/perfmodel/test_occupancy.cpp" "tests/CMakeFiles/test_perfmodel.dir/perfmodel/test_occupancy.cpp.o" "gcc" "tests/CMakeFiles/test_perfmodel.dir/perfmodel/test_occupancy.cpp.o.d"
  "/root/repo/tests/perfmodel/test_saturation.cpp" "tests/CMakeFiles/test_perfmodel.dir/perfmodel/test_saturation.cpp.o" "gcc" "tests/CMakeFiles/test_perfmodel.dir/perfmodel/test_saturation.cpp.o.d"
  "/root/repo/tests/perfmodel/test_timemodel.cpp" "tests/CMakeFiles/test_perfmodel.dir/perfmodel/test_timemodel.cpp.o" "gcc" "tests/CMakeFiles/test_perfmodel.dir/perfmodel/test_timemodel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/tbs_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/tbs_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/cpubase/CMakeFiles/tbs_cpubase.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/tbs_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
