file(REMOVE_RECURSE
  "CMakeFiles/test_vgpu.dir/vgpu/test_cache.cpp.o"
  "CMakeFiles/test_vgpu.dir/vgpu/test_cache.cpp.o.d"
  "CMakeFiles/test_vgpu.dir/vgpu/test_exec_costs.cpp.o"
  "CMakeFiles/test_vgpu.dir/vgpu/test_exec_costs.cpp.o.d"
  "CMakeFiles/test_vgpu.dir/vgpu/test_exec_edge.cpp.o"
  "CMakeFiles/test_vgpu.dir/vgpu/test_exec_edge.cpp.o.d"
  "CMakeFiles/test_vgpu.dir/vgpu/test_exec_semantics.cpp.o"
  "CMakeFiles/test_vgpu.dir/vgpu/test_exec_semantics.cpp.o.d"
  "CMakeFiles/test_vgpu.dir/vgpu/test_launch_validation.cpp.o"
  "CMakeFiles/test_vgpu.dir/vgpu/test_launch_validation.cpp.o.d"
  "test_vgpu"
  "test_vgpu.pdb"
  "test_vgpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
