# Empty dependencies file for tab2_pcf_util.
# This may be replaced when dependencies are built.
