file(REMOVE_RECURSE
  "CMakeFiles/tab2_pcf_util.dir/harness.cpp.o"
  "CMakeFiles/tab2_pcf_util.dir/harness.cpp.o.d"
  "CMakeFiles/tab2_pcf_util.dir/tab2_pcf_util.cpp.o"
  "CMakeFiles/tab2_pcf_util.dir/tab2_pcf_util.cpp.o.d"
  "tab2_pcf_util"
  "tab2_pcf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_pcf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
