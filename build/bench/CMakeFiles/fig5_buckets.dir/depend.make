# Empty dependencies file for fig5_buckets.
# This may be replaced when dependencies are built.
