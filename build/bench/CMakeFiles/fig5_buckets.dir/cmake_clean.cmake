file(REMOVE_RECURSE
  "CMakeFiles/fig5_buckets.dir/fig5_buckets.cpp.o"
  "CMakeFiles/fig5_buckets.dir/fig5_buckets.cpp.o.d"
  "CMakeFiles/fig5_buckets.dir/harness.cpp.o"
  "CMakeFiles/fig5_buckets.dir/harness.cpp.o.d"
  "fig5_buckets"
  "fig5_buckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_buckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
