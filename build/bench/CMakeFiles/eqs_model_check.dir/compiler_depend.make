# Empty compiler generated dependencies file for eqs_model_check.
# This may be replaced when dependencies are built.
