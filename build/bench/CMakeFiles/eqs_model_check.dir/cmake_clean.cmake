file(REMOVE_RECURSE
  "CMakeFiles/eqs_model_check.dir/eqs_model_check.cpp.o"
  "CMakeFiles/eqs_model_check.dir/eqs_model_check.cpp.o.d"
  "CMakeFiles/eqs_model_check.dir/harness.cpp.o"
  "CMakeFiles/eqs_model_check.dir/harness.cpp.o.d"
  "eqs_model_check"
  "eqs_model_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqs_model_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
