file(REMOVE_RECURSE
  "CMakeFiles/fig2_pcf.dir/fig2_pcf.cpp.o"
  "CMakeFiles/fig2_pcf.dir/fig2_pcf.cpp.o.d"
  "CMakeFiles/fig2_pcf.dir/harness.cpp.o"
  "CMakeFiles/fig2_pcf.dir/harness.cpp.o.d"
  "fig2_pcf"
  "fig2_pcf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_pcf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
