# Empty dependencies file for fig2_pcf.
# This may be replaced when dependencies are built.
