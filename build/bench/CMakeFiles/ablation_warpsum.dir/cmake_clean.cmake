file(REMOVE_RECURSE
  "CMakeFiles/ablation_warpsum.dir/ablation_warpsum.cpp.o"
  "CMakeFiles/ablation_warpsum.dir/ablation_warpsum.cpp.o.d"
  "CMakeFiles/ablation_warpsum.dir/harness.cpp.o"
  "CMakeFiles/ablation_warpsum.dir/harness.cpp.o.d"
  "ablation_warpsum"
  "ablation_warpsum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_warpsum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
