# Empty dependencies file for ablation_warpsum.
# This may be replaced when dependencies are built.
