file(REMOVE_RECURSE
  "CMakeFiles/beyond_multigpu.dir/beyond_multigpu.cpp.o"
  "CMakeFiles/beyond_multigpu.dir/beyond_multigpu.cpp.o.d"
  "CMakeFiles/beyond_multigpu.dir/harness.cpp.o"
  "CMakeFiles/beyond_multigpu.dir/harness.cpp.o.d"
  "beyond_multigpu"
  "beyond_multigpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beyond_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
