# Empty dependencies file for beyond_multigpu.
# This may be replaced when dependencies are built.
