file(REMOVE_RECURSE
  "CMakeFiles/ablation_private_copies.dir/ablation_private_copies.cpp.o"
  "CMakeFiles/ablation_private_copies.dir/ablation_private_copies.cpp.o.d"
  "CMakeFiles/ablation_private_copies.dir/harness.cpp.o"
  "CMakeFiles/ablation_private_copies.dir/harness.cpp.o.d"
  "ablation_private_copies"
  "ablation_private_copies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_private_copies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
