# Empty dependencies file for ablation_private_copies.
# This may be replaced when dependencies are built.
