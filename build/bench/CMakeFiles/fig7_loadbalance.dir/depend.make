# Empty dependencies file for fig7_loadbalance.
# This may be replaced when dependencies are built.
