
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_loadbalance.cpp" "bench/CMakeFiles/fig7_loadbalance.dir/fig7_loadbalance.cpp.o" "gcc" "bench/CMakeFiles/fig7_loadbalance.dir/fig7_loadbalance.cpp.o.d"
  "/root/repo/bench/harness.cpp" "bench/CMakeFiles/fig7_loadbalance.dir/harness.cpp.o" "gcc" "bench/CMakeFiles/fig7_loadbalance.dir/harness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/tbs_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/tbs_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/cpubase/CMakeFiles/tbs_cpubase.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/tbs_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
