file(REMOVE_RECURSE
  "CMakeFiles/fig4_sdh.dir/fig4_sdh.cpp.o"
  "CMakeFiles/fig4_sdh.dir/fig4_sdh.cpp.o.d"
  "CMakeFiles/fig4_sdh.dir/harness.cpp.o"
  "CMakeFiles/fig4_sdh.dir/harness.cpp.o.d"
  "fig4_sdh"
  "fig4_sdh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_sdh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
