# Empty compiler generated dependencies file for fig4_sdh.
# This may be replaced when dependencies are built.
