# Empty compiler generated dependencies file for tab4_sdh_util.
# This may be replaced when dependencies are built.
