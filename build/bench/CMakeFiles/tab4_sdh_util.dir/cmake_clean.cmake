file(REMOVE_RECURSE
  "CMakeFiles/tab4_sdh_util.dir/harness.cpp.o"
  "CMakeFiles/tab4_sdh_util.dir/harness.cpp.o.d"
  "CMakeFiles/tab4_sdh_util.dir/tab4_sdh_util.cpp.o"
  "CMakeFiles/tab4_sdh_util.dir/tab4_sdh_util.cpp.o.d"
  "tab4_sdh_util"
  "tab4_sdh_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab4_sdh_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
