# Empty compiler generated dependencies file for ablation_type3.
# This may be replaced when dependencies are built.
