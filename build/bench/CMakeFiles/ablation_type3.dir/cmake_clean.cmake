file(REMOVE_RECURSE
  "CMakeFiles/ablation_type3.dir/ablation_type3.cpp.o"
  "CMakeFiles/ablation_type3.dir/ablation_type3.cpp.o.d"
  "CMakeFiles/ablation_type3.dir/harness.cpp.o"
  "CMakeFiles/ablation_type3.dir/harness.cpp.o.d"
  "ablation_type3"
  "ablation_type3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_type3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
