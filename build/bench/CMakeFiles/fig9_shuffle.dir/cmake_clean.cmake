file(REMOVE_RECURSE
  "CMakeFiles/fig9_shuffle.dir/fig9_shuffle.cpp.o"
  "CMakeFiles/fig9_shuffle.dir/fig9_shuffle.cpp.o.d"
  "CMakeFiles/fig9_shuffle.dir/harness.cpp.o"
  "CMakeFiles/fig9_shuffle.dir/harness.cpp.o.d"
  "fig9_shuffle"
  "fig9_shuffle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
