# Empty compiler generated dependencies file for fig9_shuffle.
# This may be replaced when dependencies are built.
