# Empty dependencies file for tab3_sdh_bw.
# This may be replaced when dependencies are built.
