file(REMOVE_RECURSE
  "CMakeFiles/tab3_sdh_bw.dir/harness.cpp.o"
  "CMakeFiles/tab3_sdh_bw.dir/harness.cpp.o.d"
  "CMakeFiles/tab3_sdh_bw.dir/tab3_sdh_bw.cpp.o"
  "CMakeFiles/tab3_sdh_bw.dir/tab3_sdh_bw.cpp.o.d"
  "tab3_sdh_bw"
  "tab3_sdh_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_sdh_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
