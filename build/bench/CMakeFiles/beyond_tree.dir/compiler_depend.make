# Empty compiler generated dependencies file for beyond_tree.
# This may be replaced when dependencies are built.
