file(REMOVE_RECURSE
  "CMakeFiles/beyond_tree.dir/beyond_tree.cpp.o"
  "CMakeFiles/beyond_tree.dir/beyond_tree.cpp.o.d"
  "CMakeFiles/beyond_tree.dir/harness.cpp.o"
  "CMakeFiles/beyond_tree.dir/harness.cpp.o.d"
  "beyond_tree"
  "beyond_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beyond_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
