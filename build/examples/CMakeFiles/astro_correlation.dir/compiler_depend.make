# Empty compiler generated dependencies file for astro_correlation.
# This may be replaced when dependencies are built.
