file(REMOVE_RECURSE
  "CMakeFiles/astro_correlation.dir/astro_correlation.cpp.o"
  "CMakeFiles/astro_correlation.dir/astro_correlation.cpp.o.d"
  "astro_correlation"
  "astro_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astro_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
