# Empty dependencies file for similarity_join.
# This may be replaced when dependencies are built.
