file(REMOVE_RECURSE
  "CMakeFiles/similarity_join.dir/similarity_join.cpp.o"
  "CMakeFiles/similarity_join.dir/similarity_join.cpp.o.d"
  "similarity_join"
  "similarity_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similarity_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
