file(REMOVE_RECURSE
  "CMakeFiles/molecular_rdf.dir/molecular_rdf.cpp.o"
  "CMakeFiles/molecular_rdf.dir/molecular_rdf.cpp.o.d"
  "molecular_rdf"
  "molecular_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molecular_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
