# Empty dependencies file for molecular_rdf.
# This may be replaced when dependencies are built.
