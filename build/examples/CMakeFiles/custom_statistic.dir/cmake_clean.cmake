file(REMOVE_RECURSE
  "CMakeFiles/custom_statistic.dir/custom_statistic.cpp.o"
  "CMakeFiles/custom_statistic.dir/custom_statistic.cpp.o.d"
  "custom_statistic"
  "custom_statistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_statistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
