# Empty compiler generated dependencies file for custom_statistic.
# This may be replaced when dependencies are built.
