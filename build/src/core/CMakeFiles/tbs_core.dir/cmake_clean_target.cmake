file(REMOVE_RECURSE
  "libtbs_core.a"
)
