file(REMOVE_RECURSE
  "CMakeFiles/tbs_core.dir/angular.cpp.o"
  "CMakeFiles/tbs_core.dir/angular.cpp.o.d"
  "CMakeFiles/tbs_core.dir/framework.cpp.o"
  "CMakeFiles/tbs_core.dir/framework.cpp.o.d"
  "CMakeFiles/tbs_core.dir/planner.cpp.o"
  "CMakeFiles/tbs_core.dir/planner.cpp.o.d"
  "CMakeFiles/tbs_core.dir/problem.cpp.o"
  "CMakeFiles/tbs_core.dir/problem.cpp.o.d"
  "libtbs_core.a"
  "libtbs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
