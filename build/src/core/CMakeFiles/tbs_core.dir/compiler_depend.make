# Empty compiler generated dependencies file for tbs_core.
# This may be replaced when dependencies are built.
