file(REMOVE_RECURSE
  "libtbs_vgpu.a"
)
