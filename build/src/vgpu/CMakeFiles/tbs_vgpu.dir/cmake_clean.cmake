file(REMOVE_RECURSE
  "CMakeFiles/tbs_vgpu.dir/device.cpp.o"
  "CMakeFiles/tbs_vgpu.dir/device.cpp.o.d"
  "libtbs_vgpu.a"
  "libtbs_vgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbs_vgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
