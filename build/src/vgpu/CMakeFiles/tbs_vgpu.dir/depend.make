# Empty dependencies file for tbs_vgpu.
# This may be replaced when dependencies are built.
