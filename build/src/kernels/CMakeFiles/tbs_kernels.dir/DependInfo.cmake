
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/multi.cpp" "src/kernels/CMakeFiles/tbs_kernels.dir/multi.cpp.o" "gcc" "src/kernels/CMakeFiles/tbs_kernels.dir/multi.cpp.o.d"
  "/root/repo/src/kernels/pcf.cpp" "src/kernels/CMakeFiles/tbs_kernels.dir/pcf.cpp.o" "gcc" "src/kernels/CMakeFiles/tbs_kernels.dir/pcf.cpp.o.d"
  "/root/repo/src/kernels/sdh.cpp" "src/kernels/CMakeFiles/tbs_kernels.dir/sdh.cpp.o" "gcc" "src/kernels/CMakeFiles/tbs_kernels.dir/sdh.cpp.o.d"
  "/root/repo/src/kernels/type1.cpp" "src/kernels/CMakeFiles/tbs_kernels.dir/type1.cpp.o" "gcc" "src/kernels/CMakeFiles/tbs_kernels.dir/type1.cpp.o.d"
  "/root/repo/src/kernels/type3.cpp" "src/kernels/CMakeFiles/tbs_kernels.dir/type3.cpp.o" "gcc" "src/kernels/CMakeFiles/tbs_kernels.dir/type3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tbs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/tbs_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/tbs_perfmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
