# Empty dependencies file for tbs_kernels.
# This may be replaced when dependencies are built.
