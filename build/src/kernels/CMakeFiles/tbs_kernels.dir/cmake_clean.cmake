file(REMOVE_RECURSE
  "CMakeFiles/tbs_kernels.dir/multi.cpp.o"
  "CMakeFiles/tbs_kernels.dir/multi.cpp.o.d"
  "CMakeFiles/tbs_kernels.dir/pcf.cpp.o"
  "CMakeFiles/tbs_kernels.dir/pcf.cpp.o.d"
  "CMakeFiles/tbs_kernels.dir/sdh.cpp.o"
  "CMakeFiles/tbs_kernels.dir/sdh.cpp.o.d"
  "CMakeFiles/tbs_kernels.dir/type1.cpp.o"
  "CMakeFiles/tbs_kernels.dir/type1.cpp.o.d"
  "CMakeFiles/tbs_kernels.dir/type3.cpp.o"
  "CMakeFiles/tbs_kernels.dir/type3.cpp.o.d"
  "libtbs_kernels.a"
  "libtbs_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbs_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
