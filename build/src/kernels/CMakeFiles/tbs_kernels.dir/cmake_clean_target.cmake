file(REMOVE_RECURSE
  "libtbs_kernels.a"
)
