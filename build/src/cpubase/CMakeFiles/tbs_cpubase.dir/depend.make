# Empty dependencies file for tbs_cpubase.
# This may be replaced when dependencies are built.
