file(REMOVE_RECURSE
  "libtbs_cpubase.a"
)
