
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpubase/affinity.cpp" "src/cpubase/CMakeFiles/tbs_cpubase.dir/affinity.cpp.o" "gcc" "src/cpubase/CMakeFiles/tbs_cpubase.dir/affinity.cpp.o.d"
  "/root/repo/src/cpubase/cpu_stats.cpp" "src/cpubase/CMakeFiles/tbs_cpubase.dir/cpu_stats.cpp.o" "gcc" "src/cpubase/CMakeFiles/tbs_cpubase.dir/cpu_stats.cpp.o.d"
  "/root/repo/src/cpubase/thread_pool.cpp" "src/cpubase/CMakeFiles/tbs_cpubase.dir/thread_pool.cpp.o" "gcc" "src/cpubase/CMakeFiles/tbs_cpubase.dir/thread_pool.cpp.o.d"
  "/root/repo/src/cpubase/tree_sdh.cpp" "src/cpubase/CMakeFiles/tbs_cpubase.dir/tree_sdh.cpp.o" "gcc" "src/cpubase/CMakeFiles/tbs_cpubase.dir/tree_sdh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
