file(REMOVE_RECURSE
  "CMakeFiles/tbs_cpubase.dir/affinity.cpp.o"
  "CMakeFiles/tbs_cpubase.dir/affinity.cpp.o.d"
  "CMakeFiles/tbs_cpubase.dir/cpu_stats.cpp.o"
  "CMakeFiles/tbs_cpubase.dir/cpu_stats.cpp.o.d"
  "CMakeFiles/tbs_cpubase.dir/thread_pool.cpp.o"
  "CMakeFiles/tbs_cpubase.dir/thread_pool.cpp.o.d"
  "CMakeFiles/tbs_cpubase.dir/tree_sdh.cpp.o"
  "CMakeFiles/tbs_cpubase.dir/tree_sdh.cpp.o.d"
  "libtbs_cpubase.a"
  "libtbs_cpubase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbs_cpubase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
