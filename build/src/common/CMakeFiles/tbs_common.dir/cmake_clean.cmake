file(REMOVE_RECURSE
  "CMakeFiles/tbs_common.dir/datagen.cpp.o"
  "CMakeFiles/tbs_common.dir/datagen.cpp.o.d"
  "CMakeFiles/tbs_common.dir/histogram.cpp.o"
  "CMakeFiles/tbs_common.dir/histogram.cpp.o.d"
  "CMakeFiles/tbs_common.dir/table.cpp.o"
  "CMakeFiles/tbs_common.dir/table.cpp.o.d"
  "libtbs_common.a"
  "libtbs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
