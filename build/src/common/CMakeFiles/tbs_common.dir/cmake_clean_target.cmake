file(REMOVE_RECURSE
  "libtbs_common.a"
)
