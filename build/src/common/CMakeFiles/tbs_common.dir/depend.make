# Empty dependencies file for tbs_common.
# This may be replaced when dependencies are built.
