# Empty compiler generated dependencies file for tbs_common.
# This may be replaced when dependencies are built.
