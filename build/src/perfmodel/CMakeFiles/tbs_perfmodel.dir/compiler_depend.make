# Empty compiler generated dependencies file for tbs_perfmodel.
# This may be replaced when dependencies are built.
