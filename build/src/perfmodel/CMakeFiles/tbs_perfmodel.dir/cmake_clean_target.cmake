file(REMOVE_RECURSE
  "libtbs_perfmodel.a"
)
