
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perfmodel/counts.cpp" "src/perfmodel/CMakeFiles/tbs_perfmodel.dir/counts.cpp.o" "gcc" "src/perfmodel/CMakeFiles/tbs_perfmodel.dir/counts.cpp.o.d"
  "/root/repo/src/perfmodel/cpumodel.cpp" "src/perfmodel/CMakeFiles/tbs_perfmodel.dir/cpumodel.cpp.o" "gcc" "src/perfmodel/CMakeFiles/tbs_perfmodel.dir/cpumodel.cpp.o.d"
  "/root/repo/src/perfmodel/occupancy.cpp" "src/perfmodel/CMakeFiles/tbs_perfmodel.dir/occupancy.cpp.o" "gcc" "src/perfmodel/CMakeFiles/tbs_perfmodel.dir/occupancy.cpp.o.d"
  "/root/repo/src/perfmodel/timemodel.cpp" "src/perfmodel/CMakeFiles/tbs_perfmodel.dir/timemodel.cpp.o" "gcc" "src/perfmodel/CMakeFiles/tbs_perfmodel.dir/timemodel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tbs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/tbs_vgpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
