file(REMOVE_RECURSE
  "CMakeFiles/tbs_perfmodel.dir/counts.cpp.o"
  "CMakeFiles/tbs_perfmodel.dir/counts.cpp.o.d"
  "CMakeFiles/tbs_perfmodel.dir/cpumodel.cpp.o"
  "CMakeFiles/tbs_perfmodel.dir/cpumodel.cpp.o.d"
  "CMakeFiles/tbs_perfmodel.dir/occupancy.cpp.o"
  "CMakeFiles/tbs_perfmodel.dir/occupancy.cpp.o.d"
  "CMakeFiles/tbs_perfmodel.dir/timemodel.cpp.o"
  "CMakeFiles/tbs_perfmodel.dir/timemodel.cpp.o.d"
  "libtbs_perfmodel.a"
  "libtbs_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbs_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
